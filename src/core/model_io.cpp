// CompiledModel binary save/load.
//
// save() writes model format v4 (core/model_blob.hpp, DESIGN.md §15): a
// 64-byte-aligned offset-based blob whose instruction/constant sections
// are the in-memory representation, so a cache entry can be mmap'd and
// executed in place (CompiledModel::map_file) instead of parsed.  The
// stream load() below still exists for pipes/sockets and for the legacy
// v3 format:
//
// v3 (legacy, still readable): magic "AWEM", u32 version, u64 payload_size,
// u64 fnv1a64(payload), then a field-by-field stream payload:
//     ModelOptions {u64 order, u8 enforce_stability, u8 allow_order_fallback,
//                   u8 with_gradients},
//     SymbolicMoments {u64 nsym, per symbol {u64 element_index, string name,
//                      u8 reciprocal}; u64 nnum, polynomial[nnum]; polynomial
//                      det_y0; u64 port_count, u64 global_dim},
//     CompiledProgram (see symbolic/compile_io.cpp),
//     u8 has_gradients [, CompiledProgram gradient].
// The v3 gradient program is the reverse-mode stream (DESIGN.md §14): its
// outputs are [primal block, per symbol i: adjoint block], so its output
// count must equal (nsym + 1) * (2*order + 1) — validated below.  The v3
// payload is checksummed incrementally as it is read and parsed IN PLACE
// over the read buffer (imemstream) — one read, one pass, no intermediate
// istringstream copy.
//
// Every container is ordered and every double is written bit-exact, so
// save -> load -> save round trips byte-identically (asserted by
// test_model_cache and the CI cache-determinism job).  The checksum makes
// silent media damage (a flipped bit in a program constant would otherwise
// load as a plausible-but-wrong model) a detected load failure, which the
// cache layer quarantines like any other corrupt entry (DESIGN.md §11).
#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/awesymbolic.hpp"
#include "core/model_format.hpp"
#include "core/native_backend.hpp"
#include "health/status.hpp"
#include "symbolic/serialize.hpp"

namespace awe::core {

namespace io = symbolic::io;

namespace {

constexpr std::uint32_t kLegacyV3 = 3;

struct IncrementalFnv {
  std::uint64_t h = 1469598103934665603ull;
  void update(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(data[i]);
      h *= 1099511628211ull;
    }
  }
};

}  // namespace

void CompiledModel::save(std::ostream& os) const {
  PackInput in;
  in.order = opts_.order;
  in.enforce_stability = opts_.enforce_stability;
  in.allow_order_fallback = opts_.allow_order_fallback;
  in.symbols = sym_.symbols;
  in.numerator_count = moment_count();
  in.port_count = sym_.port_count;
  in.global_dim = sym_.global_dim;
  in.program = program_.code();
  if (grad_program_) in.gradient = grad_program_->code();
  // View-backed models already carry the checksums in their meta; owned
  // models compute them here (save is the cold path).  Reusing the native
  // backend's definition keeps the .so content address and the v4 meta in
  // exact agreement.
  in.program_checksum =
      program_checksum_ != 0 ? program_checksum_ : native::program_checksum(program_);
  if (grad_program_)
    in.gradient_checksum = gradient_checksum_ != 0
                               ? gradient_checksum_
                               : native::program_checksum(*grad_program_);
  const std::string symbolics = symbolics_payload();
  in.symbolics_blob = symbolics;
  const std::string blob = pack_model_v4(in);
  os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!os) throw std::runtime_error("CompiledModel::save: write failed");
}

std::string CompiledModel::symbolics_payload() const {
  // A view-backed model copies its raw kSymbolics section verbatim —
  // byte determinism across repacks for free, and no polynomial parse on
  // the save path either.
  if (blob_ != nullptr)
    return std::string(reinterpret_cast<const char*>(symbolics_raw_.data()),
                       symbolics_raw_.size());
  std::ostringstream os;
  io::write_u64(os, sym_.numerators.size());
  for (const symbolic::Polynomial& p : sym_.numerators) io::save_polynomial(os, p);
  io::save_polynomial(os, sym_.det_y0);
  return os.str();
}

void CompiledModel::save_legacy_v3(std::ostream& os) const {
  std::ostringstream body;
  save_payload(body);
  const std::string bytes = body.str();
  IncrementalFnv fnv;
  fnv.update(bytes.data(), bytes.size());
  os.write(kModelMagic, sizeof(kModelMagic));
  io::write_u32(os, kLegacyV3);
  io::write_u64(os, bytes.size());
  io::write_u64(os, fnv.h);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error("CompiledModel::save: write failed");
}

void CompiledModel::save_payload(std::ostream& os) const {
  io::write_u64(os, opts_.order);
  io::write_u8(os, opts_.enforce_stability ? 1 : 0);
  io::write_u8(os, opts_.allow_order_fallback ? 1 : 0);
  io::write_u8(os, opts_.with_gradients ? 1 : 0);

  const part::SymbolicMoments& sym = full_sym();
  io::write_u64(os, sym.symbols.size());
  for (const part::SymbolSpec& s : sym.symbols) {
    io::write_u64(os, s.element_index);
    io::write_string(os, s.name);
    io::write_u8(os, s.reciprocal ? 1 : 0);
  }
  io::write_u64(os, sym.numerators.size());
  for (const symbolic::Polynomial& p : sym.numerators) io::save_polynomial(os, p);
  io::save_polynomial(os, sym.det_y0);
  io::write_u64(os, sym.port_count);
  io::write_u64(os, sym.global_dim);

  program_.save(os);
  io::write_u8(os, grad_program_.has_value() ? 1 : 0);
  if (grad_program_) grad_program_->save(os);
  if (!os) throw std::runtime_error("CompiledModel::save: write failed");
}

CompiledModel CompiledModel::load(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kModelMagic, sizeof(kModelMagic)) != 0)
    throw std::runtime_error("CompiledModel::load: bad magic");
  const std::uint32_t version = io::read_u32(is);
  if (version == kModelFormatVersion) return load_v4(is);
  if (version != kLegacyV3)
    throw std::runtime_error("CompiledModel::load: unsupported format version");

  // Legacy v3: sized, checksummed stream payload.  One chunked read with
  // the checksum folded in as bytes arrive, then an in-place parse over
  // the same buffer — truncation and bit damage both fail HERE, before
  // any field is trusted.
  const std::uint64_t size = io::read_u64(is);
  const std::uint64_t checksum = io::read_u64(is);
  if (!is || size > (1ull << 32))
    throw std::runtime_error("CompiledModel::load: bad payload size");
  std::string bytes(size, '\0');
  IncrementalFnv fnv;
  constexpr std::size_t kChunk = 1 << 18;
  for (std::uint64_t off = 0; off < size;) {
    const auto want = static_cast<std::size_t>(std::min<std::uint64_t>(kChunk, size - off));
    is.read(bytes.data() + off, static_cast<std::streamsize>(want));
    if (static_cast<std::size_t>(is.gcount()) != want)
      throw std::runtime_error("CompiledModel::load: truncated payload");
    fnv.update(bytes.data() + off, want);
    off += want;
  }
  if (fnv.h != checksum)
    throw health::FailError(health::FailClass::kCacheCorrupt,
                            "CompiledModel::load: payload checksum mismatch");
  io::imemstream payload(bytes.data(), bytes.size());
  return load_payload(payload);
}

CompiledModel CompiledModel::load_v4(std::istream& is) {
  // Stream path for the v4 blob (pipes, fuzz corpora, non-mmap loads):
  // reassemble the full blob — header bytes already consumed included —
  // into an aligned heap region and run the same validated open as
  // map_file, checksum verified since this path reads everything anyway.
  const std::uint64_t total_size = io::read_u64(is);
  if (!is || total_size < sizeof(v4::Header) || total_size > (1ull << 32))
    throw std::runtime_error("CompiledModel::load: bad payload size");
  std::string blob(static_cast<std::size_t>(total_size), '\0');
  std::memcpy(blob.data(), kModelMagic, sizeof(kModelMagic));
  const std::uint32_t version = kModelFormatVersion;
  std::memcpy(blob.data() + 4, &version, 4);
  std::memcpy(blob.data() + 8, &total_size, 8);
  const std::streamsize rest = static_cast<std::streamsize>(total_size - 16);
  is.read(blob.data() + 16, rest);
  if (is.gcount() != rest)
    throw std::runtime_error("CompiledModel::load: truncated payload");
  return from_blob(make_heap_blob(blob), /*verify_checksum=*/true);
}

CompiledModel CompiledModel::load_payload(std::istream& is) {
  ModelOptions opts;
  opts.order = io::read_count(is, 1u << 16);
  opts.enforce_stability = io::read_u8(is) != 0;
  opts.allow_order_fallback = io::read_u8(is) != 0;
  opts.with_gradients = io::read_u8(is) != 0;

  part::SymbolicMoments sym;
  const std::uint64_t nsym = io::read_count(is);
  sym.symbols.resize(nsym);
  for (part::SymbolSpec& s : sym.symbols) {
    s.element_index = io::read_count(is);
    s.name = io::read_string(is);
    s.reciprocal = io::read_u8(is) != 0;
  }
  const std::uint64_t nnum = io::read_count(is);
  sym.numerators.reserve(nnum);
  for (std::uint64_t k = 0; k < nnum; ++k)
    sym.numerators.push_back(io::load_polynomial(is));
  sym.det_y0 = io::load_polynomial(is);
  sym.port_count = io::read_count(is);
  sym.global_dim = io::read_count(is);

  symbolic::CompiledProgram program = symbolic::CompiledProgram::load(is);
  std::optional<symbolic::CompiledProgram> grad_program;
  if (io::read_u8(is) != 0) grad_program.emplace(symbolic::CompiledProgram::load(is));

  // Cross-field consistency: a truncated-but-well-formed file must not
  // produce a model whose program disagrees with its symbolic side.
  if (program.input_count() != sym.symbols.size() ||
      program.output_count() != sym.numerators.size() + 1)
    throw std::runtime_error("CompiledModel::load: program/moments mismatch");
  if (opts.with_gradients != grad_program.has_value())
    throw std::runtime_error("CompiledModel::load: gradient flag mismatch");
  if (grad_program &&
      (grad_program->input_count() != sym.symbols.size() ||
       grad_program->output_count() !=
           (sym.symbols.size() + 1) * (sym.numerators.size() + 1)))
    throw std::runtime_error("CompiledModel::load: gradient program layout mismatch");
  if (sym.numerators.size() != 2 * opts.order)
    throw std::runtime_error("CompiledModel::load: moment count mismatch");

  return CompiledModel(std::move(sym), std::move(program), std::move(grad_program), opts);
}

}  // namespace awe::core
