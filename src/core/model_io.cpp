// CompiledModel binary save/load.  Format (version 2, little-endian):
//   magic "AWEM", u32 version, u64 payload_size, u64 fnv1a64(payload),
//   payload:
//     ModelOptions {u64 order, u8 enforce_stability, u8 allow_order_fallback,
//                   u8 with_gradients},
//     SymbolicMoments {u64 nsym, per symbol {u64 element_index, string name,
//                      u8 reciprocal}; u64 nnum, polynomial[nnum]; polynomial
//                      det_y0; u64 port_count, u64 global_dim},
//     CompiledProgram (see symbolic/compile_io.cpp),
//     u8 has_gradients [, CompiledProgram gradient].
// The v3 gradient program is the reverse-mode stream (DESIGN.md §14): its
// outputs are [primal block, per symbol i: adjoint block], so its output
// count must equal (nsym + 1) * (2*order + 1) — validated below.
// Every container is ordered and every double is written bit-exact, so
// save -> load -> save round trips byte-identically (asserted by
// test_model_cache and the CI cache-determinism job).  The checksum makes
// silent media damage (a flipped bit in a program constant would otherwise
// load as a plausible-but-wrong model) a detected load failure, which the
// cache layer quarantines like any other corrupt entry (DESIGN.md §11).
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/awesymbolic.hpp"
#include "core/model_format.hpp"
#include "health/status.hpp"
#include "symbolic/serialize.hpp"

namespace awe::core {

namespace io = symbolic::io;

namespace {

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void CompiledModel::save(std::ostream& os) const {
  std::ostringstream body;
  save_payload(body);
  const std::string bytes = body.str();
  os.write(kModelMagic, sizeof(kModelMagic));
  io::write_u32(os, kModelFormatVersion);
  io::write_u64(os, bytes.size());
  io::write_u64(os, fnv1a64(bytes));
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) throw std::runtime_error("CompiledModel::save: write failed");
}

void CompiledModel::save_payload(std::ostream& os) const {
  io::write_u64(os, opts_.order);
  io::write_u8(os, opts_.enforce_stability ? 1 : 0);
  io::write_u8(os, opts_.allow_order_fallback ? 1 : 0);
  io::write_u8(os, opts_.with_gradients ? 1 : 0);

  io::write_u64(os, sym_.symbols.size());
  for (const part::SymbolSpec& s : sym_.symbols) {
    io::write_u64(os, s.element_index);
    io::write_string(os, s.name);
    io::write_u8(os, s.reciprocal ? 1 : 0);
  }
  io::write_u64(os, sym_.numerators.size());
  for (const symbolic::Polynomial& p : sym_.numerators) io::save_polynomial(os, p);
  io::save_polynomial(os, sym_.det_y0);
  io::write_u64(os, sym_.port_count);
  io::write_u64(os, sym_.global_dim);

  program_.save(os);
  io::write_u8(os, grad_program_.has_value() ? 1 : 0);
  if (grad_program_) grad_program_->save(os);
  if (!os) throw std::runtime_error("CompiledModel::save: write failed");
}

CompiledModel CompiledModel::load(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kModelMagic, sizeof(kModelMagic)) != 0)
    throw std::runtime_error("CompiledModel::load: bad magic");
  const std::uint32_t version = io::read_u32(is);
  if (version != kModelFormatVersion)
    throw std::runtime_error("CompiledModel::load: unsupported format version");

  // Sized, checksummed payload: truncation and bit damage both fail HERE,
  // before any field is trusted.
  const std::uint64_t size = io::read_u64(is);
  const std::uint64_t checksum = io::read_u64(is);
  if (!is || size > (1ull << 32))
    throw std::runtime_error("CompiledModel::load: bad payload size");
  std::string bytes(size, '\0');
  is.read(bytes.data(), static_cast<std::streamsize>(size));
  if (!is || static_cast<std::uint64_t>(is.gcount()) != size)
    throw std::runtime_error("CompiledModel::load: truncated payload");
  if (fnv1a64(bytes) != checksum)
    throw health::FailError(health::FailClass::kCacheCorrupt,
                            "CompiledModel::load: payload checksum mismatch");
  std::istringstream payload(std::move(bytes));
  return load_payload(payload);
}

CompiledModel CompiledModel::load_payload(std::istream& is) {
  ModelOptions opts;
  opts.order = io::read_count(is, 1u << 16);
  opts.enforce_stability = io::read_u8(is) != 0;
  opts.allow_order_fallback = io::read_u8(is) != 0;
  opts.with_gradients = io::read_u8(is) != 0;

  part::SymbolicMoments sym;
  const std::uint64_t nsym = io::read_count(is);
  sym.symbols.resize(nsym);
  for (part::SymbolSpec& s : sym.symbols) {
    s.element_index = io::read_count(is);
    s.name = io::read_string(is);
    s.reciprocal = io::read_u8(is) != 0;
  }
  const std::uint64_t nnum = io::read_count(is);
  sym.numerators.reserve(nnum);
  for (std::uint64_t k = 0; k < nnum; ++k)
    sym.numerators.push_back(io::load_polynomial(is));
  sym.det_y0 = io::load_polynomial(is);
  sym.port_count = io::read_count(is);
  sym.global_dim = io::read_count(is);

  symbolic::CompiledProgram program = symbolic::CompiledProgram::load(is);
  std::optional<symbolic::CompiledProgram> grad_program;
  if (io::read_u8(is) != 0) grad_program.emplace(symbolic::CompiledProgram::load(is));

  // Cross-field consistency: a truncated-but-well-formed file must not
  // produce a model whose program disagrees with its symbolic side.
  if (program.input_count() != sym.symbols.size() ||
      program.output_count() != sym.numerators.size() + 1)
    throw std::runtime_error("CompiledModel::load: program/moments mismatch");
  if (opts.with_gradients != grad_program.has_value())
    throw std::runtime_error("CompiledModel::load: gradient flag mismatch");
  if (grad_program &&
      (grad_program->input_count() != sym.symbols.size() ||
       grad_program->output_count() !=
           (sym.symbols.size() + 1) * (sym.numerators.size() + 1)))
    throw std::runtime_error("CompiledModel::load: gradient program layout mismatch");
  if (sym.numerators.size() != 2 * opts.order)
    throw std::runtime_error("CompiledModel::load: moment count mismatch");

  return CompiledModel(std::move(sym), std::move(program), std::move(grad_program), opts);
}

}  // namespace awe::core
