#include "nonlinear/dc_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/sparse_lu.hpp"

namespace awe::nonlinear {

using circuit::kGround;
using circuit::NodeId;

void NonlinearCircuit::add_diode(std::string name, NodeId anode, NodeId cathode,
                                 const DiodeParams& params) {
  Device d;
  d.kind = DeviceKind::kDiode;
  d.name = std::move(name);
  d.a = anode;
  d.b = cathode;
  d.diode = params;
  devices.push_back(std::move(d));
}

void NonlinearCircuit::add_bjt_npn(std::string name, NodeId collector, NodeId base,
                                   NodeId emitter, const BjtParams& params) {
  Device d;
  d.kind = DeviceKind::kBjtNpn;
  d.name = std::move(name);
  d.a = collector;
  d.b = base;
  d.c = emitter;
  d.bjt = params;
  devices.push_back(std::move(d));
}

void NonlinearCircuit::add_nmos(std::string name, NodeId drain, NodeId gate,
                                NodeId source, const MosParams& params) {
  Device d;
  d.kind = DeviceKind::kNmos;
  d.name = std::move(name);
  d.a = drain;
  d.b = gate;
  d.c = source;
  d.mos = params;
  devices.push_back(std::move(d));
}

namespace {

/// exp with the standard SPICE linear extension beyond the overflow knee,
/// returning both the value and its derivative.
struct LimitedExp {
  double value;
  double derivative;
};
LimitedExp limited_exp(double x) {
  constexpr double kKnee = 40.0;
  if (x <= kKnee) {
    const double e = std::exp(x);
    return {e, e};
  }
  const double ek = std::exp(kKnee);
  return {ek * (1.0 + (x - kKnee)), ek};
}

/// Per-device evaluation at node voltages: KCL contributions (currents
/// leaving each terminal) and conductance stamps.
struct DeviceEval {
  // Currents leaving terminals a/b/c through the device.
  double ia = 0.0, ib = 0.0, ic = 0.0;
  SmallSignal ss;
};

DeviceEval eval_device(const Device& d, double va, double vb, double vc) {
  DeviceEval e;
  switch (d.kind) {
    case DeviceKind::kDiode: {
      const double nvt = d.diode.n * kThermalVoltage;
      const auto ex = limited_exp((va - vb) / nvt);
      const double i = d.diode.is * (ex.value - 1.0);
      e.ss.gd = d.diode.is * ex.derivative / nvt;
      e.ss.i_main = i;
      e.ia = i;        // anode -> cathode through the junction
      e.ib = -i;
      break;
    }
    case DeviceKind::kBjtNpn: {
      // a = collector, b = base, c = emitter; forward-active Ebers-Moll.
      const double vbe = vb - vc;
      const double vce = va - vc;
      const auto ex = limited_exp(vbe / kThermalVoltage);
      const double early =
          (d.bjt.vaf > 0.0) ? std::max(1.0 + vce / d.bjt.vaf, 0.1) : 1.0;
      const double icc = d.bjt.is * (ex.value - 1.0);
      const double i_c = icc * early;
      const double i_b = icc / d.bjt.beta_f;
      e.ss.gm = d.bjt.is * ex.derivative / kThermalVoltage * early;
      e.ss.gpi = d.bjt.is * ex.derivative / (kThermalVoltage * d.bjt.beta_f);
      e.ss.go = (d.bjt.vaf > 0.0 && early > 0.1) ? icc / d.bjt.vaf : 0.0;
      e.ss.i_main = i_c;
      e.ia = i_c;             // into collector, out through emitter
      e.ib = i_b;
      e.ic = -(i_c + i_b);
      break;
    }
    case DeviceKind::kNmos: {
      // a = drain, b = gate, c = source; square law, no body effect.
      const double vgs = vb - vc;
      const double vds = va - vc;
      const double vov = vgs - d.mos.vth;
      double id = 0.0, gm = 0.0, gds = 1e-12;  // gmin keeps Newton regular
      if (vov > 0.0 && vds >= 0.0) {
        if (vds < vov) {  // triode
          id = d.mos.k * (vov * vds - 0.5 * vds * vds);
          gm = d.mos.k * vds;
          gds += d.mos.k * (vov - vds);
        } else {  // saturation
          const double chan = 1.0 + d.mos.lambda * vds;
          id = 0.5 * d.mos.k * vov * vov * chan;
          gm = d.mos.k * vov * chan;
          gds += 0.5 * d.mos.k * vov * vov * d.mos.lambda;
        }
      }
      e.ss.gm = gm;
      e.ss.gds = gds;
      e.ss.i_main = id;
      e.ia = id;
      e.ic = -id;
      break;
    }
  }
  return e;
}

}  // namespace

DcResult solve_dc(const NonlinearCircuit& circuit, const DcOptions& opts) {
  circuit::MnaAssembler assembler(circuit.linear);
  const auto& lay = assembler.layout();
  const std::size_t dim = lay.dim();

  // Constant (linear) part.
  linalg::TripletMatrix g_lin(dim, dim), c_unused(dim, dim);
  assembler.stamp_all(g_lin, c_unused);
  const linalg::Vector b_lin = assembler.rhs_all_sources();

  auto v_of = [&](const linalg::Vector& x, NodeId n) {
    return n == kGround ? 0.0 : x[lay.node_unknown(n)];
  };

  DcResult result;
  result.x.assign(dim, 0.0);
  result.device_ss.resize(circuit.devices.size());

  for (int it = 0; it < opts.max_iterations; ++it) {
    // Assemble the Newton system J dx_new = b.
    linalg::TripletMatrix j(dim, dim);
    // (copy of the linear stamps)
    {
      linalg::TripletMatrix g2(dim, dim), c2(dim, dim);
      assembler.stamp_all(g2, c2);
      j = std::move(g2);
    }
    linalg::Vector b = b_lin;

    auto stamp_g = [&](NodeId r, NodeId c2, double g) {
      if (r == kGround || c2 == kGround || g == 0.0) return;
      j.add(lay.node_unknown(r), lay.node_unknown(c2), g);
    };
    auto stamp_pair = [&](NodeId p, NodeId n, double g) {
      stamp_g(p, p, g);
      stamp_g(n, n, g);
      stamp_g(p, n, -g);
      stamp_g(n, p, -g);
    };
    auto inject = [&](NodeId node, double i_leaving) {
      // KCL: currents leaving through the device move to the RHS.
      if (node != kGround) b[lay.node_unknown(node)] -= i_leaving;
    };

    for (std::size_t di = 0; di < circuit.devices.size(); ++di) {
      const Device& d = circuit.devices[di];
      const double va = v_of(result.x, d.a);
      const double vb = v_of(result.x, d.b);
      const double vc = v_of(result.x, d.c);
      const DeviceEval e = eval_device(d, va, vb, vc);
      result.device_ss[di] = e.ss;
      switch (d.kind) {
        case DeviceKind::kDiode: {
          stamp_pair(d.a, d.b, e.ss.gd);
          const double vd = va - vb;
          const double ieq = e.ss.i_main - e.ss.gd * vd;  // I(V) - g V0
          inject(d.a, ieq);
          inject(d.b, -ieq);
          break;
        }
        case DeviceKind::kBjtNpn: {
          // Collector current: gm (b,e) control + go (c,e) conductance.
          auto stamp_vccs = [&](NodeId p, NodeId n, NodeId cp, NodeId cn, double g) {
            stamp_g(p, cp, g);
            stamp_g(p, cn, -g);
            stamp_g(n, cp, -g);
            stamp_g(n, cn, g);
          };
          stamp_vccs(d.a, d.c, d.b, d.c, e.ss.gm);
          stamp_pair(d.a, d.c, e.ss.go);
          stamp_pair(d.b, d.c, e.ss.gpi);
          const double vbe = vb - vc;
          const double vce = va - vc;
          const double ic_eq = e.ia - e.ss.gm * vbe - e.ss.go * vce;
          const double ib_eq = e.ib - e.ss.gpi * vbe;
          inject(d.a, ic_eq);
          inject(d.b, ib_eq);
          inject(d.c, -(ic_eq + ib_eq));
          break;
        }
        case DeviceKind::kNmos: {
          auto stamp_vccs = [&](NodeId p, NodeId n, NodeId cp, NodeId cn, double g) {
            stamp_g(p, cp, g);
            stamp_g(p, cn, -g);
            stamp_g(n, cp, -g);
            stamp_g(n, cn, g);
          };
          stamp_vccs(d.a, d.c, d.b, d.c, e.ss.gm);
          stamp_pair(d.a, d.c, e.ss.gds);
          const double vgs = vb - vc;
          const double vds = va - vc;
          const double id_eq = e.ia - e.ss.gm * vgs - e.ss.gds * vds;
          inject(d.a, id_eq);
          inject(d.c, -id_eq);
          break;
        }
      }
    }

    auto lu = linalg::SparseLu::factor(j.compress());
    if (!lu)
      throw std::runtime_error("solve_dc: singular Newton Jacobian at iteration " +
                               std::to_string(it));
    linalg::Vector x_new = lu->solve(b);

    // Junction-voltage damping: limit the largest junction update.
    double max_junction_step = 0.0;
    for (const Device& d : circuit.devices) {
      const NodeId p = (d.kind == DeviceKind::kDiode) ? d.a : d.b;
      const NodeId n = (d.kind == DeviceKind::kDiode) ? d.b : d.c;
      const double before = v_of(result.x, p) - v_of(result.x, n);
      const double after = v_of(x_new, p) - v_of(x_new, n);
      max_junction_step = std::max(max_junction_step, std::abs(after - before));
    }
    double damp = 1.0;
    if (max_junction_step > opts.junction_step) damp = opts.junction_step / max_junction_step;

    double max_delta = 0.0, max_x = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double delta = damp * (x_new[i] - result.x[i]);
      result.x[i] += delta;
      max_delta = std::max(max_delta, std::abs(delta));
      max_x = std::max(max_x, std::abs(result.x[i]));
    }
    result.iterations = it + 1;
    if (damp == 1.0 && max_delta < opts.abstol + opts.reltol * max_x) {
      result.converged = true;
      // Refresh the small-signal parameters at the final point.
      for (std::size_t di = 0; di < circuit.devices.size(); ++di) {
        const Device& d = circuit.devices[di];
        result.device_ss[di] =
            eval_device(d, v_of(result.x, d.a), v_of(result.x, d.b), v_of(result.x, d.c))
                .ss;
      }
      return result;
    }
  }
  return result;  // converged = false
}

circuit::Netlist linearize(const NonlinearCircuit& circuit, const DcResult& op) {
  if (!op.converged)
    throw std::invalid_argument("linearize: operating point did not converge");
  // Copy the linear part with independent sources zeroed (small-signal).
  circuit::Netlist ss = circuit.linear;
  for (std::size_t i = 0; i < ss.elements().size(); ++i) {
    const auto kind = ss.elements()[i].kind;
    if (kind == circuit::ElementKind::kVoltageSource ||
        kind == circuit::ElementKind::kCurrentSource)
      ss.set_value(i, 0.0);
  }

  for (std::size_t di = 0; di < circuit.devices.size(); ++di) {
    const Device& d = circuit.devices[di];
    const SmallSignal& s = op.device_ss[di];
    switch (d.kind) {
      case DeviceKind::kDiode:
        if (s.gd > 0.0) ss.add_conductance(d.name + ".gd", d.a, d.b, s.gd);
        if (d.diode.cj > 0.0) ss.add_capacitor(d.name + ".cj", d.a, d.b, d.diode.cj);
        break;
      case DeviceKind::kBjtNpn:
        if (s.gm > 0.0) ss.add_vccs(d.name + ".gm", d.a, d.c, d.b, d.c, s.gm);
        if (s.gpi > 0.0) ss.add_conductance(d.name + ".gpi", d.b, d.c, s.gpi);
        if (s.go > 0.0) ss.add_conductance(d.name + ".go", d.a, d.c, s.go);
        if (d.bjt.cpi > 0.0) ss.add_capacitor(d.name + ".cpi", d.b, d.c, d.bjt.cpi);
        if (d.bjt.cmu > 0.0) ss.add_capacitor(d.name + ".cmu", d.b, d.a, d.bjt.cmu);
        break;
      case DeviceKind::kNmos:
        if (s.gm > 0.0) ss.add_vccs(d.name + ".gm", d.a, d.c, d.b, d.c, s.gm);
        if (s.gds > 0.0) ss.add_conductance(d.name + ".gds", d.a, d.c, s.gds);
        if (d.mos.cgs > 0.0) ss.add_capacitor(d.name + ".cgs", d.b, d.c, d.mos.cgs);
        if (d.mos.cgd > 0.0) ss.add_capacitor(d.name + ".cgd", d.b, d.a, d.mos.cgd);
        break;
    }
  }
  return ss;
}

}  // namespace awe::nonlinear
