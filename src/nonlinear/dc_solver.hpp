// Newton-Raphson DC operating-point solver and small-signal linearizer.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "nonlinear/devices.hpp"

namespace awe::nonlinear {

/// A nonlinear circuit: a linear netlist (R, C, L, sources, ...) plus
/// nonlinear devices attached to its nodes.
struct NonlinearCircuit {
  circuit::Netlist linear;
  std::vector<Device> devices;

  /// Convenience builders (nodes come from linear.node(...)).
  void add_diode(std::string name, circuit::NodeId anode, circuit::NodeId cathode,
                 const DiodeParams& params = {});
  void add_bjt_npn(std::string name, circuit::NodeId collector, circuit::NodeId base,
                   circuit::NodeId emitter, const BjtParams& params = {});
  void add_nmos(std::string name, circuit::NodeId drain, circuit::NodeId gate,
                circuit::NodeId source, const MosParams& params = {});
};

struct DcOptions {
  int max_iterations = 200;
  double abstol = 1e-12;      ///< on voltage updates (V)
  double reltol = 1e-9;
  double junction_step = 0.3; ///< max junction-voltage change per iteration (V)
};

struct DcResult {
  bool converged = false;
  int iterations = 0;
  linalg::Vector x;                      ///< full MNA solution (DC)
  std::vector<SmallSignal> device_ss;    ///< per device, at the solution
};

/// Solve the DC operating point (capacitors open, inductors short — the
/// MNA G matrix handles both naturally).
DcResult solve_dc(const NonlinearCircuit& circuit, const DcOptions& opts = {});

/// Emit the small-signal linearized netlist at the operating point:
/// the original linear elements (independent sources zeroed) plus, per
/// device, conductances / VCCS / junction capacitances.  Element names are
/// "<device>.gm", "<device>.gpi", ...  Returns a self-contained Netlist
/// ready for AWE/AWEsymbolic (add your own small-signal input source, or
/// keep one of the original sources as the input and set its value).
circuit::Netlist linearize(const NonlinearCircuit& circuit, const DcResult& op);

}  // namespace awe::nonlinear
