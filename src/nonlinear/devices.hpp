// Nonlinear device models for the linearization front-end.
//
// The paper analyzes "linear(ized)" circuits: nonlinear devices are
// replaced by their small-signal equivalents at a DC operating point
// computed by a Newton-Raphson solve (what SPICE's .OP does, and what the
// authors' AWE environment did before handing the 741 to AWEsymbolic).
// This module provides the classic teaching-grade device set:
//
//   * diode        — Shockley law, series-free junction
//   * npn BJT      — forward-active simplified Ebers-Moll with Early effect
//   * nmos MOSFET  — square-law with channel-length modulation
//
// plus fixed junction capacitances that enter the linearized netlist.
// Each model supplies its current vector and Jacobian (conductance) stamps
// for the Newton iteration, and its small-signal stamps for linearize().
#pragma once

#include <cstddef>
#include <string>

#include "circuit/netlist.hpp"

namespace awe::nonlinear {

inline constexpr double kThermalVoltage = 0.02585;  // ~300 K

struct DiodeParams {
  double is = 1e-14;   ///< saturation current (A)
  double n = 1.0;      ///< emission coefficient
  double cj = 0.0;     ///< junction capacitance, linearized as fixed (F)
};

struct BjtParams {
  double is = 1e-16;   ///< transport saturation current (A)
  double beta_f = 100; ///< forward beta
  double vaf = 100.0;  ///< Early voltage (V); <=0 disables the Early term
  double cpi = 0.0;    ///< base-emitter capacitance (F)
  double cmu = 0.0;    ///< base-collector capacitance (F)
};

struct MosParams {
  double k = 2e-4;     ///< transconductance parameter k = mu Cox W/L (A/V^2)
  double vth = 0.7;    ///< threshold voltage (V)
  double lambda = 0.0; ///< channel-length modulation (1/V)
  double cgs = 0.0;    ///< gate-source capacitance (F)
  double cgd = 0.0;    ///< gate-drain capacitance (F)
};

enum class DeviceKind { kDiode, kBjtNpn, kNmos };

struct Device {
  DeviceKind kind{};
  std::string name;
  // Terminals: diode (a=anode, b=cathode); BJT (a=collector, b=base,
  // c=emitter); MOS (a=drain, b=gate, c=source).
  circuit::NodeId a = circuit::kGround;
  circuit::NodeId b = circuit::kGround;
  circuit::NodeId c = circuit::kGround;
  DiodeParams diode;
  BjtParams bjt;
  MosParams mos;
};

/// Small-signal parameters of one device at an operating point.
struct SmallSignal {
  // Diode: gd.  BJT: gm, gpi, go.  MOS: gm, gds.
  double gd = 0.0;
  double gm = 0.0;
  double gpi = 0.0;
  double go = 0.0;
  double gds = 0.0;
  // Bias currents, for reporting.
  double i_main = 0.0;  ///< diode current / collector current / drain current
};

}  // namespace awe::nonlinear
