// Cell decomposition of the numeric partition — the unit of incremental
// rebuild (DESIGN.md §13, after osrm-backend's extract/customize split).
//
// The numeric partition's port-admittance moment extraction is split into
// independent *cells*: groups of elements whose internal nodes are shared
// with no other cell.  With every boundary node grounded through the
// zero-volt port sources, each cell's grounded-port admittance moments
// superpose exactly — summing the per-cell blocks over the expanded
// boundary space reproduces the whole-partition extraction, and a dense
// series Schur complement eliminates the non-port boundary nodes again.
//
// Each cell owns a *canonical encoding* of its sub-circuit (topology +
// values + boundary), invariant under node renames and element-addition
// order; its content hash keys the persistent per-partition block store.
// Editing one element therefore dirties exactly the cells containing it:
// every other cell's moment blocks reload from the store bit-identically.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace awe::part {

/// Cells above this many elements are split by a deterministic BFS over
/// the element graph (the resulting internal seam nodes are promoted to
/// boundary nodes).  The value trades cache granularity against the
/// per-cell extraction and Schur overhead; ~a few hundred elements keeps
/// a single-element edit to a small fraction of a large partition.
inline constexpr std::size_t kDefaultCellTargetElements = 192;

struct Cell {
  /// Indices into the numeric netlist's element list, ordered by element
  /// name (the canonical scan order).
  std::vector<std::size_t> elements;
  /// Boundary nodes (numeric-netlist ids) in canonical-label order: the
  /// order the encoding scan first encounters them.  The cell's moment
  /// blocks are indexed in exactly this order.
  std::vector<circuit::NodeId> boundary;
  /// Canonical byte encoding; content-hash it via cell_key().
  std::string encoding;
  /// (element index, byte offset into `encoding`) of each member's value
  /// field — the only value-dependent bytes.  Lets an in-process plan
  /// cache re-key an edited cell by patching 8 bytes per element instead
  /// of re-planning the whole netlist.
  std::vector<std::pair<std::size_t, std::size_t>> value_slots;
};

struct CellPlan {
  /// Cells ordered by their smallest element name — the fixed summation
  /// order that keeps the assembled blocks bit-stable.
  std::vector<Cell> cells;
  /// Internal nodes promoted to boundary by BFS splitting (sorted ids);
  /// empty when every cell is a whole connected component.  The expanded
  /// extraction space is [ports in caller order, then promoted].
  std::vector<circuit::NodeId> promoted;
  /// Nodes provably at AC ground (pinned through zero-volt sources);
  /// indexed by NodeId.  They map to ground inside every cell.
  std::vector<char> pinned;
};

/// Decompose `numeric` (the partitioner's numeric sub-netlist: V sources
/// already zero-valued) against the cut set `ports`.  Elements coupled by
/// name references (CCCS/CCVS -> controlling source, mutual -> both
/// inductors) or by VCCS/VCVS control terminals always share a cell.
/// With `allow_promotion` false, cells are exactly the connected
/// components (no splitting, `promoted` stays empty) — the fallback plan
/// when a promoted seam makes the Schur pivot singular.
CellPlan plan_cells(const circuit::Netlist& numeric,
                    std::span<const circuit::NodeId> ports,
                    std::size_t target_elements = kDefaultCellTargetElements,
                    bool allow_promotion = true);

/// Content hash of a cell's canonical encoding at a given moment count —
/// the persistent block-store key (32 hex digits).
std::string cell_key(const Cell& cell, std::size_t moment_count);

/// The cell's canonical encoding with every member's value replaced from
/// `values` (indexed by numeric element id) — byte-identical to what
/// plan_cells would emit for a netlist edited to those values.
std::string cell_encoding_with_values(const Cell& cell,
                                      std::span<const double> values);

/// cell_key() over a patched encoding (see cell_encoding_with_values).
std::string cell_key_with_values(const Cell& cell, std::span<const double> values,
                                 std::size_t moment_count);

/// A cell rebuilt as a standalone netlist purely from its canonical
/// labels ("n1", "n2", ... — label 0 is ground), so the extraction input
/// is a function of the encoding alone, never of the surrounding
/// netlist's interning order.
struct CellCircuit {
  circuit::Netlist circuit;
  /// Cell-local node ids of the boundary, aligned with Cell::boundary.
  std::vector<circuit::NodeId> boundary_local;
};

/// With non-empty `values` (indexed by numeric element id), element values
/// are taken from there instead of the netlist — so a cached structural
/// plan can extract an edited cell without rebuilding the numeric netlist.
CellCircuit build_cell_circuit(const circuit::Netlist& numeric, const Cell& cell,
                               const CellPlan& plan,
                               std::span<const double> values = {});

/// Series Schur complement: reduce moment blocks over [ports, promoted]
/// (dimension np + ne) to the leading np x np port block, eliminating the
/// promoted seam nodes.  With Y(s) = [A B; C D], the reduced series is
/// S(s) = A - B D^{-1} C, computed order by order through
///   F_0 = D0^{-1} C_0,   F_k = D0^{-1} (C_k - sum_{j>=1} D_j F_{k-j}),
///   S_k = A_k - sum_i B_i F_{k-i}.
/// Returns std::nullopt when the DC seam block D0 is numerically singular
/// (callers fall back to the unsplit component plan).
std::optional<std::vector<std::vector<double>>> schur_reduce_series(
    const std::vector<std::vector<double>>& yk, std::size_t np, std::size_t count);

}  // namespace awe::part
