#include "partition/block_store.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "circuit/content_hash.hpp"
#include "health/failpoints.hpp"
#include "health/report.hpp"

namespace awe::part {

namespace {

// Layout: "AWEB" magic, u32 version, u32 nb, u32 count, count*nb*nb f64
// payload, u64 checksum (lane 1 of the shared dual-lane hash over
// everything before it).  All little-endian via the enc:: writers.
constexpr char kMagic[4] = {'A', 'W', 'E', 'B'};
constexpr std::uint32_t kBlockFormatVersion = 1;

std::atomic<std::uint64_t> g_tmp_counter{0};

std::uint64_t checksum(const std::string& body) {
  enc::Hash2 h;
  h.update(body.data(), body.size());
  return h.final1();
}

std::string encode(std::size_t nb, std::size_t count,
                   const std::vector<std::vector<double>>& blocks) {
  std::string body;
  body.reserve(16 + count * nb * nb * 8 + 8);
  body.append(kMagic, sizeof(kMagic));
  enc::put_u32(body, kBlockFormatVersion);
  enc::put_u32(body, nb);
  enc::put_u32(body, count);
  for (const auto& block : blocks)
    for (const double v : block) enc::put_f64(body, v);
  enc::put_u64(body, checksum(body));
  return body;
}

std::uint64_t get_u64(const std::string& s, std::size_t at) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(s[at + i])) << (8 * i);
  return v;
}

std::uint32_t get_u32(const std::string& s, std::size_t at) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(s[at + i])) << (8 * i);
  return v;
}

}  // namespace

BlockStore::BlockStore(std::string dir) : dir_(std::move(dir)) {}

std::string BlockStore::entry_path(const std::string& dir, const std::string& key) {
  return (std::filesystem::path(dir) / (key + ".aweblock")).string();
}

std::optional<std::vector<std::vector<double>>> BlockStore::load(
    const std::string& key, std::size_t nb, std::size_t count) {
  const std::string path = entry_path(dir_, key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string body = raw.str();
  in.close();

  const std::size_t payload = count * nb * nb * 8;
  const std::size_t expected = 16 + payload + 8;
  bool valid = body.size() == expected &&
               std::memcmp(body.data(), kMagic, sizeof(kMagic)) == 0 &&
               get_u32(body, 4) == kBlockFormatVersion && get_u32(body, 8) == nb &&
               get_u32(body, 12) == count;
  if (valid) {
    enc::Hash2 h;
    h.update(body.data(), body.size() - 8);
    valid = h.final1() == get_u64(body, body.size() - 8);
  }
  if (!valid) {
    // Torn or damaged entry: preserve the evidence as <entry>.bad (never
    // re-probed) and report a miss — the caller recomputes and re-stores.
    // Best-effort: a failed rename still must surface as a miss.
    std::error_code ec;
    std::filesystem::remove(path + ".bad", ec);
    std::filesystem::rename(path, path + ".bad", ec);
    if (ec) std::filesystem::remove(path, ec);
    health::global_counters().partition_blocks_quarantined.fetch_add(
        1, std::memory_order_relaxed);
    return std::nullopt;
  }

  std::vector<std::vector<double>> blocks(count, std::vector<double>(nb * nb));
  std::size_t at = 16;
  for (auto& block : blocks)
    for (double& v : block) {
      const std::uint64_t bits = get_u64(body, at);
      std::memcpy(&v, &bits, sizeof(v));
      at += 8;
    }
  return blocks;
}

void BlockStore::store(const std::string& key, std::size_t nb,
                       const std::vector<std::vector<double>>& blocks) {
  namespace fs = std::filesystem;
  namespace fp = health::failpoints;
  fs::create_directories(dir_);
  const std::string final_path = entry_path(dir_, key);
  const std::string body = encode(nb, blocks.size(), blocks);
  // Injection site: a writer that died mid-store WITHOUT the tmp+rename
  // discipline, leaving a torn block at the final path.  The next load
  // must quarantine it and rebuild, never throw.
  if (fp::fires(fp::sites::kPartitionBlock)) {
    std::ofstream out(final_path, std::ios::binary | std::ios::trunc);
    out.write(body.data(), static_cast<std::streamsize>(body.size() / 2));
    return;
  }
  std::ostringstream tmp_name;
  tmp_name << final_path << ".tmp." << ::getpid() << "."
           << g_tmp_counter.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp_path = tmp_name.str();
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("BlockStore: cannot write " + tmp_path);
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    if (!out) throw std::runtime_error("BlockStore: write failed for " + tmp_path);
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    throw std::runtime_error("BlockStore: rename into " + final_path + " failed");
  }
}

}  // namespace awe::part
