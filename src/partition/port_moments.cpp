#include "partition/port_moments.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "circuit/mna.hpp"
#include "engine/thread_pool.hpp"
#include "health/failpoints.hpp"
#include "health/status.hpp"
#include "linalg/sparse_lu.hpp"

namespace awe::part {

namespace {

/// Restores the netlist on scope exit: truncates appended port sources and
/// puts the zeroed V-source values back (exception-safe, so a singular
/// factor throw cannot leak scratch elements into the caller's netlist).
class NetlistRestorer {
 public:
  explicit NetlistRestorer(circuit::Netlist& netlist)
      : netlist_(netlist), element_count_(netlist.elements().size()) {
    for (std::size_t i = 0; i < element_count_; ++i)
      if (netlist.elements()[i].kind == circuit::ElementKind::kVoltageSource) {
        saved_.emplace_back(i, netlist.elements()[i].value);
        netlist.set_value(i, 0.0);
      }
  }
  ~NetlistRestorer() {
    netlist_.truncate_elements(element_count_);
    for (const auto& [idx, value] : saved_) netlist_.set_value(idx, value);
  }
  NetlistRestorer(const NetlistRestorer&) = delete;
  NetlistRestorer& operator=(const NetlistRestorer&) = delete;

 private:
  circuit::Netlist& netlist_;
  std::size_t element_count_;
  std::vector<std::pair<std::size_t, double>> saved_;
};

}  // namespace

std::vector<std::vector<double>> port_admittance_moments_inplace(
    circuit::Netlist& netlist, const std::vector<circuit::NodeId>& port_nodes,
    std::size_t count, sweep::ThreadPool* pool) {
  const std::size_t m = port_nodes.size();
  if (m == 0) throw std::invalid_argument("port_admittance_moments: no ports");
  for (const auto p : port_nodes)
    if (p == circuit::kGround)
      throw std::invalid_argument("port_admittance_moments: ground cannot be a port");

  // Zero internal V sources (shorts) and attach one grounding source per
  // port; the restorer undoes both when we leave.
  NetlistRestorer restore(netlist);
  std::vector<std::size_t> port_source(m);
  for (std::size_t p = 0; p < m; ++p)
    port_source[p] = netlist.add_voltage_source("__port" + std::to_string(p), port_nodes[p],
                                                circuit::kGround, 0.0);

  circuit::MnaAssembler assembler(netlist);
  const auto g = assembler.build_g();
  const auto c = assembler.build_c();
  auto lu = linalg::SparseLu::factor(g);
  if (!lu)
    throw health::FailError(
        health::FailClass::kSingularY0,
        "port_admittance_moments: grounded-port DC matrix is singular — a port is "
        "DC-shorted by an ideal inductor (its port admittance has a pole at s=0 "
        "and no Maclaurin expansion), or an internal node lost its DC path");

  std::vector<std::size_t> aux_row(m);
  for (std::size_t p = 0; p < m; ++p)
    aux_row[p] = assembler.layout().aux_unknown(port_source[p]);

  std::vector<std::vector<double>> yk(count, std::vector<double>(m * m, 0.0));
  // Column j: excite port j, run the moment recursion against the shared
  // factor.  Columns are independent and write disjoint (i*m + j) slots.
  auto solve_column = [&](std::size_t j) {
    health::failpoints::maybe_fail(health::failpoints::sites::kPartitionMomentSolve);
    linalg::Vector x = lu->solve(assembler.rhs("__port" + std::to_string(j), 1.0));
    for (std::size_t k = 0; k < count; ++k) {
      if (k > 0) {
        linalg::Vector rhs = c.multiply(x);
        for (double& v : rhs) v = -v;
        lu->solve_in_place(rhs);
        x = std::move(rhs);
      }
      // Current INTO the subnetwork at port i = minus the source branch
      // current (the branch current flows node -> ground).
      for (std::size_t i = 0; i < m; ++i) yk[k][i * m + j] = -x[aux_row[i]];
    }
  };
  if (pool && pool->size() > 1 && m > 1) {
    pool->parallel_chunks(m, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t j = begin; j < end; ++j) solve_column(j);
    });
  } else {
    for (std::size_t j = 0; j < m; ++j) solve_column(j);
  }
  return yk;
}

std::vector<std::vector<double>> port_admittance_moments(
    const circuit::Netlist& netlist, const std::vector<circuit::NodeId>& port_nodes,
    std::size_t count, sweep::ThreadPool* pool) {
  circuit::Netlist sub = netlist;
  return port_admittance_moments_inplace(sub, port_nodes, count, pool);
}

}  // namespace awe::part
