#include "partition/port_moments.hpp"

#include <stdexcept>
#include <string>

#include "circuit/mna.hpp"
#include "linalg/sparse_lu.hpp"

namespace awe::part {

std::vector<std::vector<double>> port_admittance_moments(
    const circuit::Netlist& netlist, const std::vector<circuit::NodeId>& port_nodes,
    std::size_t count) {
  const std::size_t m = port_nodes.size();
  if (m == 0) throw std::invalid_argument("port_admittance_moments: no ports");
  for (const auto p : port_nodes)
    if (p == circuit::kGround)
      throw std::invalid_argument("port_admittance_moments: ground cannot be a port");

  // Work on a copy: zero internal V sources (shorts) and attach one
  // grounding source per port.
  circuit::Netlist sub = netlist;
  for (std::size_t i = 0; i < sub.elements().size(); ++i)
    if (sub.elements()[i].kind == circuit::ElementKind::kVoltageSource)
      sub.set_value(i, 0.0);
  std::vector<std::size_t> port_source(m);
  for (std::size_t p = 0; p < m; ++p)
    port_source[p] = sub.add_voltage_source("__port" + std::to_string(p), port_nodes[p],
                                            circuit::kGround, 0.0);

  circuit::MnaAssembler assembler(sub);
  const auto g = assembler.build_g();
  const auto c = assembler.build_c();
  auto lu = linalg::SparseLu::factor(g);
  if (!lu)
    throw std::runtime_error(
        "port_admittance_moments: grounded-port DC matrix is singular — a port is "
        "DC-shorted by an ideal inductor (its port admittance has a pole at s=0 "
        "and no Maclaurin expansion), or an internal node lost its DC path");

  std::vector<std::size_t> aux_row(m);
  for (std::size_t p = 0; p < m; ++p)
    aux_row[p] = assembler.layout().aux_unknown(port_source[p]);

  std::vector<std::vector<double>> yk(count, std::vector<double>(m * m, 0.0));
  for (std::size_t j = 0; j < m; ++j) {
    linalg::Vector x = lu->solve(assembler.rhs("__port" + std::to_string(j), 1.0));
    for (std::size_t k = 0; k < count; ++k) {
      if (k > 0) {
        linalg::Vector rhs = c.multiply(x);
        for (double& v : rhs) v = -v;
        lu->solve_in_place(rhs);
        x = std::move(rhs);
      }
      // Current INTO the subnetwork at port i = minus the source branch
      // current (the branch current flows node -> ground).
      for (std::size_t i = 0; i < m; ++i) yk[k][i * m + j] = -x[aux_row[i]];
    }
  }
  return yk;
}

}  // namespace awe::part
