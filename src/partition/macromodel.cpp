#include "partition/macromodel.hpp"

#include <cmath>
#include <stdexcept>

#include "awe/pade.hpp"
#include "engine/thread_pool.hpp"
#include "partition/port_moments.hpp"

namespace awe::part {

namespace {

/// Fit one (i, j) entry from its moment series.  Entries are independent;
/// the parallel path below fans them out over disjoint slots.
void fit_entry(const std::vector<std::vector<double>>& yk, std::size_t ports,
               std::size_t need, std::size_t max_order, std::size_t i, std::size_t j,
               PortMacromodel::EntryModel& e) {
  // y(s) = d0 + d1 s + h(s) with h(s) = sum r/(s-p) strictly proper.  The
  // moments of h for k >= 2 are exactly y's, and
  //   m_{j+2} = -sum (r/p^2) / p^{j+1},
  // i.e. the series [m2, m3, ...] is a pole/residue system with the same
  // poles and residues r' = r/p^2.  Fit those with a Padé, then recover
  //   r = r' p^2,  d0 = m0 + sum r/p,  d1 = m1 + sum r/p^2.
  std::vector<double> shifted(need - 2);
  double scale = 0.0;
  for (std::size_t k = 2; k < need; ++k) {
    shifted[k - 2] = yk[k][i * ports + j];
    scale = std::max(scale, std::abs(shifted[k - 2]));
  }
  const double m0 = yk[0][i * ports + j];
  const double m1 = yk[1][i * ports + j];
  if (scale == 0.0) {
    // Frequency-flat entry (purely resistive/capacitive coupling).
    e.d0 = m0;
    e.d1 = m1;
    return;
  }
  std::size_t order = std::min(max_order, engine::max_feasible_order(shifted));
  if (order == 0) {
    e.d0 = m0;
    e.d1 = m1;
    return;
  }
  const auto pade = engine::pade_from_moments(shifted, order);
  e.poles = pade.poles;
  e.residues.resize(pade.poles.size());
  std::complex<double> sum_rp{0, 0}, sum_rp2{0, 0};
  for (std::size_t k = 0; k < pade.poles.size(); ++k) {
    const auto p = pade.poles[k];
    e.residues[k] = pade.residues[k] * p * p;
    sum_rp += e.residues[k] / p;
    sum_rp2 += e.residues[k] / (p * p);
  }
  e.d0 = m0 + sum_rp.real();
  e.d1 = m1 + sum_rp2.real();
}

}  // namespace

PortMacromodel PortMacromodel::build(const circuit::Netlist& netlist,
                                     const std::vector<circuit::NodeId>& port_nodes,
                                     const Options& opts, sweep::ThreadPool* pool) {
  if (opts.order == 0) throw std::invalid_argument("PortMacromodel: order must be >= 1");
  const std::size_t need = std::max(opts.moments, 2 * opts.order + 2);
  PortMacromodel mm;
  mm.ports_ = port_nodes.size();
  mm.yk_ = port_admittance_moments(netlist, port_nodes, need, pool);
  const std::size_t entries = mm.ports_ * mm.ports_;
  mm.entries_.resize(entries);

  auto fit = [&](std::size_t idx) {
    fit_entry(mm.yk_, mm.ports_, need, opts.order, idx / mm.ports_, idx % mm.ports_,
              mm.entries_[idx]);
  };
  if (pool && pool->size() > 1 && entries > 1) {
    pool->parallel_chunks(entries, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t idx = begin; idx < end; ++idx) fit(idx);
    });
  } else {
    for (std::size_t idx = 0; idx < entries; ++idx) fit(idx);
  }
  return mm;
}

std::vector<PortMacromodel> PortMacromodel::build_many(
    const std::vector<PartitionSpec>& parts, const Options& opts,
    sweep::ThreadPool* pool) {
  for (const PartitionSpec& p : parts)
    if (p.netlist == nullptr)
      throw std::invalid_argument("PortMacromodel::build_many: null netlist");

  // Fill-construct from a member-scope instance: the default ctor is
  // private, so vector's allocator cannot default-construct elements.
  std::vector<PortMacromodel> out(parts.size(), PortMacromodel());
  if (parts.size() == 1) {
    out[0] = build(*parts[0].netlist, parts[0].ports, opts, pool);
    return out;
  }
  if (pool && pool->size() > 1 && parts.size() > 1) {
    pool->parallel_chunks(parts.size(),
                          [&](std::size_t, std::size_t begin, std::size_t end) {
                            for (std::size_t i = begin; i < end; ++i)
                              out[i] = build(*parts[i].netlist, parts[i].ports, opts);
                          });
  } else {
    for (std::size_t i = 0; i < parts.size(); ++i)
      out[i] = build(*parts[i].netlist, parts[i].ports, opts);
  }
  return out;
}

const PortMacromodel::EntryModel& PortMacromodel::entry(std::size_t i,
                                                        std::size_t j) const {
  if (i >= ports_ || j >= ports_) throw std::out_of_range("PortMacromodel::entry");
  return entries_[i * ports_ + j];
}

std::complex<double> PortMacromodel::admittance(std::size_t i, std::size_t j,
                                                std::complex<double> s) const {
  const EntryModel& e = entry(i, j);
  std::complex<double> y = e.d0 + e.d1 * s;
  for (std::size_t k = 0; k < e.poles.size(); ++k)
    y += e.residues[k] / (s - e.poles[k]);
  return y;
}

}  // namespace awe::part
