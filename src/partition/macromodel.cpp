#include "partition/macromodel.hpp"

#include <cmath>
#include <stdexcept>

#include "awe/pade.hpp"
#include "partition/port_moments.hpp"

namespace awe::part {

PortMacromodel PortMacromodel::build(const circuit::Netlist& netlist,
                                     const std::vector<circuit::NodeId>& port_nodes,
                                     const Options& opts) {
  if (opts.order == 0) throw std::invalid_argument("PortMacromodel: order must be >= 1");
  const std::size_t need = std::max(opts.moments, 2 * opts.order + 2);
  PortMacromodel mm;
  mm.ports_ = port_nodes.size();
  mm.yk_ = port_admittance_moments(netlist, port_nodes, need);
  mm.entries_.resize(mm.ports_ * mm.ports_);

  // Per entry: y(s) = d0 + d1 s + h(s) with h(s) = sum r/(s-p) strictly
  // proper.  The moments of h for k >= 2 are exactly y's, and
  //   m_{j+2} = -sum (r/p^2) / p^{j+1},
  // i.e. the series [m2, m3, ...] is a pole/residue system with the same
  // poles and residues r' = r/p^2.  Fit those with a Padé, then recover
  //   r = r' p^2,  d0 = m0 + sum r/p,  d1 = m1 + sum r/p^2.
  for (std::size_t i = 0; i < mm.ports_; ++i) {
    for (std::size_t j = 0; j < mm.ports_; ++j) {
      EntryModel& e = mm.entries_[i * mm.ports_ + j];
      std::vector<double> shifted(need - 2);
      double scale = 0.0;
      for (std::size_t k = 2; k < need; ++k) {
        shifted[k - 2] = mm.yk_[k][i * mm.ports_ + j];
        scale = std::max(scale, std::abs(shifted[k - 2]));
      }
      const double m0 = mm.yk_[0][i * mm.ports_ + j];
      const double m1 = mm.yk_[1][i * mm.ports_ + j];
      if (scale == 0.0) {
        // Frequency-flat entry (purely resistive/capacitive coupling).
        e.d0 = m0;
        e.d1 = m1;
        continue;
      }
      std::size_t order = std::min(opts.order, engine::max_feasible_order(shifted));
      if (order == 0) {
        e.d0 = m0;
        e.d1 = m1;
        continue;
      }
      const auto pade = engine::pade_from_moments(shifted, order);
      e.poles = pade.poles;
      e.residues.resize(pade.poles.size());
      std::complex<double> sum_rp{0, 0}, sum_rp2{0, 0};
      for (std::size_t k = 0; k < pade.poles.size(); ++k) {
        const auto p = pade.poles[k];
        e.residues[k] = pade.residues[k] * p * p;
        sum_rp += e.residues[k] / p;
        sum_rp2 += e.residues[k] / (p * p);
      }
      e.d0 = m0 + sum_rp.real();
      e.d1 = m1 + sum_rp2.real();
    }
  }
  return mm;
}

const PortMacromodel::EntryModel& PortMacromodel::entry(std::size_t i,
                                                        std::size_t j) const {
  if (i >= ports_ || j >= ports_) throw std::out_of_range("PortMacromodel::entry");
  return entries_[i * ports_ + j];
}

std::complex<double> PortMacromodel::admittance(std::size_t i, std::size_t j,
                                                std::complex<double> s) const {
  const EntryModel& e = entry(i, j);
  std::complex<double> y = e.d0 + e.d1 * s;
  for (std::size_t k = 0; k < e.poles.size(); ++k)
    y += e.residues[k] / (s - e.poles[k]);
  return y;
}

}  // namespace awe::part
