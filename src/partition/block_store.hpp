// Persistent content-addressed store of per-cell port-moment blocks —
// the partition-level half of the compiled-model cache (DESIGN.md §13).
//
// Each entry is one cell's Maclaurin admittance blocks Y_0..Y_{count-1}
// under its canonical cell key (see cells.hpp): a fixed binary layout
// with a trailing content checksum, written tmp+rename so readers never
// see a torn entry from a live writer.  A writer that died mid-store (or
// media damage) is caught by the checksum on load: the entry is
// quarantined to <entry>.bad and recomputed — a corrupt store can cost
// time, never correctness.  Blocks hold the extraction's doubles
// verbatim, so a reloaded block is bit-identical to a fresh one.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace awe::part {

class BlockStore {
 public:
  /// `dir` is created lazily on the first store().
  explicit BlockStore(std::string dir);

  /// Load the blocks for `key`, expecting `nb` boundary nodes and `count`
  /// moments.  Returns std::nullopt on miss; a present-but-invalid entry
  /// (bad magic/shape/checksum — including the cache.partition failpoint's
  /// torn writes) is quarantined to <entry>.bad, counted in
  /// partition_blocks_quarantined, and reported as a miss.
  std::optional<std::vector<std::vector<double>>> load(const std::string& key,
                                                       std::size_t nb,
                                                       std::size_t count);

  /// Atomically store blocks under `key` (tmp + rename).  The
  /// cache.partition failpoint simulates a mid-store crash here: half the
  /// bytes land at the final path with no rename discipline.
  void store(const std::string& key, std::size_t nb,
             const std::vector<std::vector<double>>& blocks);

  static std::string entry_path(const std::string& dir, const std::string& key);

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace awe::part
