// Multiport admittance moment computation (shared by the moment-level
// partitioner and the N-port macromodel builder).
//
// The subnetwork's ports are grounded through zero-volt sources; exciting
// port j with a unit voltage and running the AWE moment recursion yields
// the Maclaurin blocks of the port admittance matrix:
//   Y_k(i, j) = (-1) * k-th moment of the port-i source branch current.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/netlist.hpp"

namespace awe::part {

/// Y_0..Y_{count-1} (row-major port_nodes.size() x port_nodes.size()).
/// Independent V sources inside the subnetwork stay as shorts at value 0;
/// I sources are open.  Throws std::runtime_error when the grounded-port
/// DC matrix is singular (e.g. a port DC-shorted by an ideal inductor).
std::vector<std::vector<double>> port_admittance_moments(
    const circuit::Netlist& netlist, const std::vector<circuit::NodeId>& port_nodes,
    std::size_t count);

}  // namespace awe::part
