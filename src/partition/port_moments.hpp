// Multiport admittance moment computation (shared by the moment-level
// partitioner and the N-port macromodel builder).
//
// The subnetwork's ports are grounded through zero-volt sources; exciting
// port j with a unit voltage and running the AWE moment recursion yields
// the Maclaurin blocks of the port admittance matrix:
//   Y_k(i, j) = (-1) * k-th moment of the port-i source branch current.
//
// The m port excitation columns share one SparseLu factor and are
// otherwise independent (factor once, solve many), so they fan out over a
// sweep::ThreadPool when one is supplied.  Column j's solve sequence is
// identical whatever the thread count and every column writes disjoint
// yk slots, so the result is bit-identical to the serial path.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/netlist.hpp"

namespace awe::sweep {
class ThreadPool;
}

namespace awe::part {

/// Y_0..Y_{count-1} (row-major port_nodes.size() x port_nodes.size()).
/// Independent V sources inside the subnetwork stay as shorts at value 0;
/// I sources are open.  Throws std::runtime_error when the grounded-port
/// DC matrix is singular (e.g. a port DC-shorted by an ideal inductor).
/// `pool` (optional) parallelizes the per-port excitation columns.
std::vector<std::vector<double>> port_admittance_moments(
    const circuit::Netlist& netlist, const std::vector<circuit::NodeId>& port_nodes,
    std::size_t count, sweep::ThreadPool* pool = nullptr);

/// Mutate-and-restore variant: works directly on `netlist` (zeroes the V
/// sources and appends one grounding source per port, restoring both on
/// every exit path) instead of deep-copying it, so repeated per-partition
/// extraction stops allocating O(circuit) per call.  The netlist is
/// returned to its original element list and values even on throw; node
/// interning is untouched (ports must already be interned).
std::vector<std::vector<double>> port_admittance_moments_inplace(
    circuit::Netlist& netlist, const std::vector<circuit::NodeId>& port_nodes,
    std::size_t count, sweep::ThreadPool* pool = nullptr);

}  // namespace awe::part
