#include "partition/partitioner.hpp"

#include <algorithm>
#include <stdexcept>

#include "circuit/mna.hpp"
#include "partition/port_moments.hpp"

namespace awe::part {

using circuit::Element;
using circuit::ElementKind;
using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;
using symbolic::Polynomial;
using symbolic::PolyMatrix;
using symbolic::RationalFunction;

std::vector<std::string> SymbolicMoments::symbol_names() const {
  std::vector<std::string> names;
  names.reserve(symbols.size());
  for (const auto& s : symbols) names.push_back(s.name);
  return names;
}

RationalFunction SymbolicMoments::moment(std::size_t k) const {
  Polynomial den = Polynomial::constant(det_y0.nvars(), 1.0);
  for (std::size_t i = 0; i <= k; ++i) den = den * det_y0;
  return RationalFunction(numerators.at(k), std::move(den));
}

std::vector<double> SymbolicMoments::to_symbol_values(
    std::span<const double> element_values) const {
  if (element_values.size() != symbols.size())
    throw std::invalid_argument("SymbolicMoments: wrong number of element values");
  std::vector<double> vals(element_values.begin(), element_values.end());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (symbols[i].reciprocal) {
      if (vals[i] == 0.0)
        throw std::domain_error("SymbolicMoments: zero value for reciprocal symbol");
      vals[i] = 1.0 / vals[i];
    }
  }
  return vals;
}

std::vector<double> SymbolicMoments::evaluate(std::span<const double> element_values) const {
  const auto vals = to_symbol_values(element_values);
  const double d = det_y0.evaluate(vals);
  if (d == 0.0) throw std::domain_error("SymbolicMoments: det(Y0) vanishes at this point");
  std::vector<double> m(numerators.size());
  double dp = d;
  for (std::size_t k = 0; k < numerators.size(); ++k) {
    m[k] = numerators[k].evaluate(vals) / dp;
    dp *= d;
  }
  return m;
}

namespace {

bool symbolic_kind_supported(ElementKind kind) {
  switch (kind) {
    case ElementKind::kResistor:
    case ElementKind::kConductance:
    case ElementKind::kCapacitor:
    case ElementKind::kInductor:
    case ElementKind::kVccs:
      return true;
    default:
      return false;
  }
}

}  // namespace

SymbolicMoments MultiSymbolicMoments::for_output(std::size_t output_index) const {
  SymbolicMoments out;
  out.symbols = symbols;
  out.numerators = numerators.at(output_index);
  out.det_y0 = det_y0;
  out.port_count = port_count;
  out.global_dim = global_dim;
  return out;
}

MomentPartitioner::MomentPartitioner(const Netlist& netlist,
                                     std::vector<std::string> symbol_elements,
                                     std::string input_source, NodeId output_node)
    : MomentPartitioner(netlist, std::move(symbol_elements), std::move(input_source),
                        std::vector<NodeId>{output_node}) {}

MomentPartitioner::MomentPartitioner(const Netlist& netlist,
                                     std::vector<std::string> symbol_elements,
                                     std::string input_source,
                                     std::vector<NodeId> output_nodes)
    : netlist_(&netlist), output_nodes_(std::move(output_nodes)) {
  if (output_nodes_.empty())
    throw std::invalid_argument("MomentPartitioner: need at least one output node");
  for (const NodeId output_node : output_nodes_)
    if (output_node == kGround)
      throw std::invalid_argument("MomentPartitioner: output node cannot be ground");
  if (symbol_elements.empty())
    throw std::invalid_argument("MomentPartitioner: need at least one symbolic element");

  const auto input_idx = netlist.find_element(input_source);
  if (!input_idx)
    throw std::invalid_argument("MomentPartitioner: unknown input source '" + input_source +
                                "'");
  const auto input_kind = netlist.elements()[*input_idx].kind;
  if (input_kind != ElementKind::kVoltageSource && input_kind != ElementKind::kCurrentSource)
    throw std::invalid_argument("MomentPartitioner: input '" + input_source +
                                "' is not an independent source");
  input_element_ = *input_idx;

  for (auto& name : symbol_elements) {
    const auto idx = netlist.find_element(name);
    if (!idx)
      throw std::invalid_argument("MomentPartitioner: unknown symbolic element '" + name +
                                  "'");
    const Element& e = netlist.elements()[*idx];
    if (!symbolic_kind_supported(e.kind))
      throw std::invalid_argument("MomentPartitioner: element '" + name + "' of kind " +
                                  circuit::to_string(e.kind) +
                                  " cannot be symbolic (supported: R, G, C, L, VCCS)");
    if (*idx == input_element_)
      throw std::invalid_argument("MomentPartitioner: input source cannot be symbolic");
    if (e.kind == ElementKind::kInductor) {
      // A symbolic inductor must not participate in a mutual coupling:
      // the M = k sqrt(L1 L2) stamp would not be linear in the symbol.
      for (const auto& other : netlist.elements())
        if (other.kind == ElementKind::kMutual &&
            (other.ctrl_source == e.name || other.ctrl_source2 == e.name))
          throw std::invalid_argument("MomentPartitioner: inductor '" + e.name +
                                      "' is mutually coupled ('" + other.name +
                                      "') and cannot be symbolic");
    }
    SymbolSpec spec;
    spec.element_index = *idx;
    spec.name = e.name;
    spec.reciprocal = (e.kind == ElementKind::kResistor);
    symbols_.push_back(std::move(spec));
  }

  // Supply rails: nodes pinned to ground by an ideal V source (other than
  // the input) are AC ground for the small-signal analysis.
  rail_nodes_.assign(netlist.num_nodes() + 1, false);
  for (std::size_t i = 0; i < netlist.elements().size(); ++i) {
    if (i == input_element_) continue;
    const Element& e = netlist.elements()[i];
    if (e.kind != ElementKind::kVoltageSource) continue;
    if (e.neg == kGround && e.pos != kGround) rail_nodes_[e.pos] = true;
    if (e.pos == kGround && e.neg != kGround) rail_nodes_[e.neg] = true;
  }
  for (const NodeId output_node : output_nodes_)
    if (rail_nodes_[output_node])
      throw std::invalid_argument(
          "MomentPartitioner: output node is pinned by an ideal source (AC ground); "
          "its small-signal transfer is identically zero");
  {
    const Element& in = netlist.elements()[input_element_];
    if ((in.pos != kGround && rail_nodes_[in.pos]) ||
        (in.neg != kGround && rail_nodes_[in.neg]))
      throw std::invalid_argument(
          "MomentPartitioner: input source terminal is pinned by another ideal "
          "source");
  }

  // Port set: terminals of symbolic elements (incl. VCCS controls), input
  // source terminals, output node.  Ground and AC-ground rails never
  // become ports.
  auto add_port = [&](NodeId n) {
    if (!ac_grounded(n)) ports_.push_back(n);
  };
  for (const auto& s : symbols_) {
    const Element& e = netlist.elements()[s.element_index];
    add_port(e.pos);
    add_port(e.neg);
    if (e.kind == ElementKind::kVccs) {
      add_port(e.ctrl_pos);
      add_port(e.ctrl_neg);
    }
  }
  {
    const Element& in = netlist.elements()[input_element_];
    add_port(in.pos);
    add_port(in.neg);
  }
  for (const NodeId output_node : output_nodes_) add_port(output_node);
  std::sort(ports_.begin(), ports_.end());
  ports_.erase(std::unique(ports_.begin(), ports_.end()), ports_.end());
}

bool MomentPartitioner::ac_grounded(NodeId node) const {
  return node == kGround || (node < rail_nodes_.size() && rail_nodes_[node]);
}

std::size_t MomentPartitioner::port_index(NodeId node) const {
  const auto it = std::lower_bound(ports_.begin(), ports_.end(), node);
  if (it == ports_.end() || *it != node)
    throw std::logic_error("MomentPartitioner: node is not a port");
  return static_cast<std::size_t>(it - ports_.begin());
}

std::vector<std::vector<double>> MomentPartitioner::numeric_port_moments(
    std::size_t count, sweep::ThreadPool* pool) const {
  const std::size_t m = ports_.size();

  // Numeric partition: every element except the symbolic ones and the
  // input source, plus one grounding voltage source per port.  Node names
  // are re-interned, so ports are re-resolved by name.
  Netlist numeric;
  std::vector<bool> is_symbolic(netlist_->elements().size(), false);
  for (const auto& s : symbols_) is_symbolic[s.element_index] = true;

  auto remap = [&](NodeId n) { return numeric.node(netlist_->node_name(n)); };
  for (std::size_t i = 0; i < netlist_->elements().size(); ++i) {
    if (is_symbolic[i] || i == input_element_) continue;
    const Element& e = netlist_->elements()[i];
    switch (e.kind) {
      case ElementKind::kResistor:
        numeric.add_resistor(e.name, remap(e.pos), remap(e.neg), e.value);
        break;
      case ElementKind::kConductance:
        numeric.add_conductance(e.name, remap(e.pos), remap(e.neg), e.value);
        break;
      case ElementKind::kCapacitor:
        numeric.add_capacitor(e.name, remap(e.pos), remap(e.neg), e.value);
        break;
      case ElementKind::kInductor:
        numeric.add_inductor(e.name, remap(e.pos), remap(e.neg), e.value);
        break;
      case ElementKind::kVoltageSource:
        // Non-input V sources stay as 0-valued sources (shorts) — their
        // branch is part of the numeric partition topology.
        numeric.add_voltage_source(e.name, remap(e.pos), remap(e.neg), 0.0);
        break;
      case ElementKind::kCurrentSource:
        break;  // zeroed current source = open circuit
      case ElementKind::kVccs:
        numeric.add_vccs(e.name, remap(e.pos), remap(e.neg), remap(e.ctrl_pos),
                         remap(e.ctrl_neg), e.value);
        break;
      case ElementKind::kVcvs:
        numeric.add_vcvs(e.name, remap(e.pos), remap(e.neg), remap(e.ctrl_pos),
                         remap(e.ctrl_neg), e.value);
        break;
      case ElementKind::kCccs:
        numeric.add_cccs(e.name, remap(e.pos), remap(e.neg), e.ctrl_source, e.value);
        break;
      case ElementKind::kCcvs:
        numeric.add_ccvs(e.name, remap(e.pos), remap(e.neg), e.ctrl_source, e.value);
        break;
      case ElementKind::kMutual:
        numeric.add_mutual(e.name, e.ctrl_source, e.ctrl_source2, e.value);
        break;
    }
  }
  std::vector<NodeId> remapped_ports;
  remapped_ports.reserve(m);
  for (std::size_t p = 0; p < m; ++p) remapped_ports.push_back(remap(ports_[p]));
  // `numeric` is already this call's private copy, so the in-place variant
  // avoids a second O(circuit) deep copy inside the extraction.
  return port_admittance_moments_inplace(numeric, remapped_ports, count, pool);
}

SymbolicMoments MomentPartitioner::compute(std::size_t count, sweep::ThreadPool* pool) const {
  return compute_all(count, pool).for_output(0);
}

MultiSymbolicMoments MomentPartitioner::compute_all(std::size_t count,
                                                    sweep::ThreadPool* pool) const {
  if (count == 0) throw std::invalid_argument("MomentPartitioner: count must be >= 1");
  const std::size_t m = ports_.size();
  const std::size_t nvars = symbols_.size();
  const auto yk_numeric = numeric_port_moments(count, pool);

  // ---- Global layout: ports, then aux currents (input V source, symbolic
  // inductor branches).
  GlobalLayout lay;
  lay.num_ports = m;
  std::size_t dim = m;
  const Element& input = netlist_->elements()[input_element_];
  const bool v_input = input.kind == ElementKind::kVoltageSource;
  if (v_input) lay.input_aux = dim++;
  lay.inductor_aux.assign(symbols_.size(), SIZE_MAX);
  for (std::size_t si = 0; si < symbols_.size(); ++si) {
    if (netlist_->elements()[symbols_[si].element_index].kind == ElementKind::kInductor)
      lay.inductor_aux[si] = dim++;
  }
  lay.dim = dim;

  // ---- Assemble global Y_k as polynomial matrices.
  std::vector<PolyMatrix> yg;
  yg.reserve(count);
  for (std::size_t k = 0; k < count; ++k) yg.emplace_back(dim, dim, nvars);

  // Numeric partition blocks (constants).
  for (std::size_t k = 0; k < count; ++k)
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j) {
        const double v = yk_numeric[k][i * m + j];
        if (v != 0.0) yg[k](i, j) += Polynomial::constant(nvars, v);
      }

  // Symbolic element stamps (exactly one term per element, paper eqn (10)).
  // AC-grounded rail nodes behave as ground.
  auto pidx = [&](NodeId n) { return port_index(n); };
  auto gnd = [&](NodeId n) { return ac_grounded(n); };
  for (std::size_t si = 0; si < symbols_.size(); ++si) {
    const Element& e = netlist_->elements()[symbols_[si].element_index];
    const Polynomial sym = Polynomial::variable(nvars, si);
    auto stamp2 = [&](PolyMatrix& y, NodeId a, NodeId b) {
      if (!gnd(a)) y(pidx(a), pidx(a)) += sym;
      if (!gnd(b)) y(pidx(b), pidx(b)) += sym;
      if (!gnd(a) && !gnd(b)) {
        y(pidx(a), pidx(b)) -= sym;
        y(pidx(b), pidx(a)) -= sym;
      }
    };
    switch (e.kind) {
      case ElementKind::kResistor:      // symbol is the conductance 1/R
      case ElementKind::kConductance:
        stamp2(yg[0], e.pos, e.neg);
        break;
      case ElementKind::kCapacitor:
        if (count > 1) stamp2(yg[1], e.pos, e.neg);
        break;
      case ElementKind::kInductor: {
        const std::size_t aux = lay.inductor_aux[si];
        const Polynomial one = Polynomial::constant(nvars, 1.0);
        if (!gnd(e.pos)) {
          yg[0](pidx(e.pos), aux) += one;
          yg[0](aux, pidx(e.pos)) += one;
        }
        if (!gnd(e.neg)) {
          yg[0](pidx(e.neg), aux) -= one;
          yg[0](aux, pidx(e.neg)) -= one;
        }
        if (count > 1) yg[1](aux, aux) -= sym;
        break;
      }
      case ElementKind::kVccs: {
        auto add = [&](NodeId r, NodeId c2, double sign) {
          if (gnd(r) || gnd(c2)) return;
          Polynomial t = sym;
          t *= sign;
          yg[0](pidx(r), pidx(c2)) += t;
        };
        add(e.pos, e.ctrl_pos, 1.0);
        add(e.pos, e.ctrl_neg, -1.0);
        add(e.neg, e.ctrl_pos, -1.0);
        add(e.neg, e.ctrl_neg, 1.0);
        break;
      }
      default:
        throw std::logic_error("unsupported symbolic kind slipped through");
    }
  }

  // Input source stamp + excitation vector I_0.
  std::vector<Polynomial> i0(dim, Polynomial(nvars));
  if (v_input) {
    const Polynomial one = Polynomial::constant(nvars, 1.0);
    if (input.pos != kGround) {
      yg[0](pidx(input.pos), lay.input_aux) += one;
      yg[0](lay.input_aux, pidx(input.pos)) += one;
    }
    if (input.neg != kGround) {
      yg[0](pidx(input.neg), lay.input_aux) -= one;
      yg[0](lay.input_aux, pidx(input.neg)) -= one;
    }
    i0[lay.input_aux] = Polynomial::constant(nvars, 1.0);
  } else {
    if (input.pos != kGround) i0[pidx(input.pos)] = Polynomial::constant(nvars, -1.0);
    if (input.neg != kGround) i0[pidx(input.neg)] = Polynomial::constant(nvars, 1.0);
  }

  // ---- Symbolic moment recursion via the adjugate.
  const Polynomial d = determinant(yg[0]);
  if (d.is_zero())
    throw std::runtime_error("MomentPartitioner: det(Y0) is identically zero");
  const PolyMatrix adj = adjugate(yg[0]);

  // N_0 = adj * I_0;  N_k = adj * ( - sum_{j=1..k} Y_j N_{k-j} d^{j-1} ).
  std::vector<std::vector<Polynomial>> n(count);
  n[0] = adj.multiply(i0);
  std::vector<Polynomial> d_pow{Polynomial::constant(nvars, 1.0)};  // d^0, d^1, ...
  for (std::size_t k = 1; k < count; ++k) {
    while (d_pow.size() < k) d_pow.push_back(d_pow.back() * d);
    std::vector<Polynomial> rhs(dim, Polynomial(nvars));
    for (std::size_t j = 1; j <= k; ++j) {
      const auto yj_n = yg[j].multiply(n[k - j]);
      for (std::size_t r = 0; r < dim; ++r) {
        if (yj_n[r].is_zero()) continue;
        rhs[r] -= yj_n[r] * d_pow[j - 1];
      }
    }
    n[k] = adj.multiply(rhs);
  }

  MultiSymbolicMoments out;
  out.symbols = symbols_;
  out.det_y0 = d;
  out.port_count = m;
  out.global_dim = dim;
  out.outputs = output_nodes_;
  out.numerators.resize(output_nodes_.size());
  for (std::size_t o = 0; o < output_nodes_.size(); ++o) {
    const std::size_t out_idx = port_index(output_nodes_[o]);
    out.numerators[o].reserve(count);
    for (std::size_t k = 0; k < count; ++k) out.numerators[o].push_back(n[k][out_idx]);
  }
  return out;
}

}  // namespace awe::part
