#include "partition/partitioner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "circuit/content_hash.hpp"

#include "circuit/mna.hpp"
#include "engine/thread_pool.hpp"
#include "health/report.hpp"
#include "health/status.hpp"
#include "partition/block_store.hpp"
#include "partition/cells.hpp"
#include "partition/port_moments.hpp"

namespace awe::part {

using circuit::Element;
using circuit::ElementKind;
using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;
using symbolic::Polynomial;
using symbolic::PolyMatrix;
using symbolic::RationalFunction;

std::vector<std::string> SymbolicMoments::symbol_names() const {
  std::vector<std::string> names;
  names.reserve(symbols.size());
  for (const auto& s : symbols) names.push_back(s.name);
  return names;
}

RationalFunction SymbolicMoments::moment(std::size_t k) const {
  Polynomial den = Polynomial::constant(det_y0.nvars(), 1.0);
  for (std::size_t i = 0; i <= k; ++i) den = den * det_y0;
  return RationalFunction(numerators.at(k), std::move(den));
}

std::vector<double> SymbolicMoments::to_symbol_values(
    std::span<const double> element_values) const {
  if (element_values.size() != symbols.size())
    throw std::invalid_argument("SymbolicMoments: wrong number of element values");
  std::vector<double> vals(element_values.begin(), element_values.end());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (symbols[i].reciprocal) {
      if (vals[i] == 0.0)
        throw std::domain_error("SymbolicMoments: zero value for reciprocal symbol");
      vals[i] = 1.0 / vals[i];
    }
  }
  return vals;
}

std::vector<double> SymbolicMoments::evaluate(std::span<const double> element_values) const {
  const auto vals = to_symbol_values(element_values);
  const double d = det_y0.evaluate(vals);
  if (d == 0.0) throw std::domain_error("SymbolicMoments: det(Y0) vanishes at this point");
  std::vector<double> m(numerators.size());
  double dp = d;
  for (std::size_t k = 0; k < numerators.size(); ++k) {
    m[k] = numerators[k].evaluate(vals) / dp;
    dp *= d;
  }
  return m;
}

namespace {

bool symbolic_kind_supported(ElementKind kind) {
  switch (kind) {
    case ElementKind::kResistor:
    case ElementKind::kConductance:
    case ElementKind::kCapacitor:
    case ElementKind::kInductor:
    case ElementKind::kVccs:
      return true;
    default:
      return false;
  }
}

}  // namespace

SymbolicMoments MultiSymbolicMoments::for_output(std::size_t output_index) const {
  SymbolicMoments out;
  out.symbols = symbols;
  out.numerators = numerators.at(output_index);
  out.det_y0 = det_y0;
  out.port_count = port_count;
  out.global_dim = global_dim;
  return out;
}

MomentPartitioner::MomentPartitioner(const Netlist& netlist,
                                     std::vector<std::string> symbol_elements,
                                     std::string input_source, NodeId output_node)
    : MomentPartitioner(netlist, std::move(symbol_elements), std::move(input_source),
                        std::vector<NodeId>{output_node}) {}

MomentPartitioner::MomentPartitioner(const Netlist& netlist,
                                     std::vector<std::string> symbol_elements,
                                     std::string input_source,
                                     std::vector<NodeId> output_nodes)
    : netlist_(&netlist), output_nodes_(std::move(output_nodes)) {
  if (output_nodes_.empty())
    throw std::invalid_argument("MomentPartitioner: need at least one output node");
  for (const NodeId output_node : output_nodes_)
    if (output_node == kGround)
      throw std::invalid_argument("MomentPartitioner: output node cannot be ground");
  if (symbol_elements.empty())
    throw std::invalid_argument("MomentPartitioner: need at least one symbolic element");

  const auto input_idx = netlist.find_element(input_source);
  if (!input_idx)
    throw std::invalid_argument("MomentPartitioner: unknown input source '" + input_source +
                                "'");
  const auto input_kind = netlist.elements()[*input_idx].kind;
  if (input_kind != ElementKind::kVoltageSource && input_kind != ElementKind::kCurrentSource)
    throw std::invalid_argument("MomentPartitioner: input '" + input_source +
                                "' is not an independent source");
  input_element_ = *input_idx;

  for (auto& name : symbol_elements) {
    const auto idx = netlist.find_element(name);
    if (!idx)
      throw std::invalid_argument("MomentPartitioner: unknown symbolic element '" + name +
                                  "'");
    const Element& e = netlist.elements()[*idx];
    if (!symbolic_kind_supported(e.kind))
      throw std::invalid_argument("MomentPartitioner: element '" + name + "' of kind " +
                                  circuit::to_string(e.kind) +
                                  " cannot be symbolic (supported: R, G, C, L, VCCS)");
    if (*idx == input_element_)
      throw std::invalid_argument("MomentPartitioner: input source cannot be symbolic");
    if (e.kind == ElementKind::kInductor) {
      // A symbolic inductor must not participate in a mutual coupling:
      // the M = k sqrt(L1 L2) stamp would not be linear in the symbol.
      for (const auto& other : netlist.elements())
        if (other.kind == ElementKind::kMutual &&
            (other.ctrl_source == e.name || other.ctrl_source2 == e.name))
          throw std::invalid_argument("MomentPartitioner: inductor '" + e.name +
                                      "' is mutually coupled ('" + other.name +
                                      "') and cannot be symbolic");
    }
    SymbolSpec spec;
    spec.element_index = *idx;
    spec.name = e.name;
    spec.reciprocal = (e.kind == ElementKind::kResistor);
    symbols_.push_back(std::move(spec));
  }

  // Supply rails: nodes pinned to ground by an ideal V source (other than
  // the input) are AC ground for the small-signal analysis.
  rail_nodes_.assign(netlist.num_nodes() + 1, false);
  for (std::size_t i = 0; i < netlist.elements().size(); ++i) {
    if (i == input_element_) continue;
    const Element& e = netlist.elements()[i];
    if (e.kind != ElementKind::kVoltageSource) continue;
    if (e.neg == kGround && e.pos != kGround) rail_nodes_[e.pos] = true;
    if (e.pos == kGround && e.neg != kGround) rail_nodes_[e.neg] = true;
  }
  for (const NodeId output_node : output_nodes_)
    if (rail_nodes_[output_node])
      throw std::invalid_argument(
          "MomentPartitioner: output node is pinned by an ideal source (AC ground); "
          "its small-signal transfer is identically zero");
  {
    const Element& in = netlist.elements()[input_element_];
    if ((in.pos != kGround && rail_nodes_[in.pos]) ||
        (in.neg != kGround && rail_nodes_[in.neg]))
      throw std::invalid_argument(
          "MomentPartitioner: input source terminal is pinned by another ideal "
          "source");
  }

  // Port set: terminals of symbolic elements (incl. VCCS controls), input
  // source terminals, output node.  Ground and AC-ground rails never
  // become ports.
  auto add_port = [&](NodeId n) {
    if (!ac_grounded(n)) ports_.push_back(n);
  };
  for (const auto& s : symbols_) {
    const Element& e = netlist.elements()[s.element_index];
    add_port(e.pos);
    add_port(e.neg);
    if (e.kind == ElementKind::kVccs) {
      add_port(e.ctrl_pos);
      add_port(e.ctrl_neg);
    }
  }
  {
    const Element& in = netlist.elements()[input_element_];
    add_port(in.pos);
    add_port(in.neg);
  }
  for (const NodeId output_node : output_nodes_) add_port(output_node);
  std::sort(ports_.begin(), ports_.end());
  ports_.erase(std::unique(ports_.begin(), ports_.end()), ports_.end());
}

bool MomentPartitioner::ac_grounded(NodeId node) const {
  return node == kGround || (node < rail_nodes_.size() && rail_nodes_[node]);
}

std::size_t MomentPartitioner::port_index(NodeId node) const {
  const auto it = std::lower_bound(ports_.begin(), ports_.end(), node);
  if (it == ports_.end() || *it != node)
    throw std::logic_error("MomentPartitioner: node is not a port");
  return static_cast<std::size_t>(it - ports_.begin());
}

namespace {

using CellBlocks = std::shared_ptr<const std::vector<std::vector<double>>>;

/// Sum the per-cell blocks over the expanded boundary space
/// [ports, promoted] in fixed cell order (superposition of grounded-
/// boundary extractions is exact, and the fixed order keeps the
/// floating-point sums bit-stable), then Schur-reduce back to the port
/// space.  Returns an empty optional when the DC seam block is singular.
std::optional<std::vector<std::vector<double>>> sum_and_reduce(
    const CellPlan& plan, const std::vector<NodeId>& remapped_ports,
    const std::vector<CellBlocks>& cell_blocks, std::size_t count) {
  const std::size_t np = remapped_ports.size();
  const std::size_t ne = plan.promoted.size();
  const std::size_t dim = np + ne;

  std::unordered_map<NodeId, std::size_t> global_index;
  for (std::size_t p = 0; p < np; ++p) global_index.emplace(remapped_ports[p], p);
  for (std::size_t e = 0; e < ne; ++e) global_index.emplace(plan.promoted[e], np + e);

  std::vector<std::vector<double>> yk_full(count, std::vector<double>(dim * dim, 0.0));
  for (std::size_t ci = 0; ci < plan.cells.size(); ++ci) {
    const Cell& cell = plan.cells[ci];
    const std::size_t nb = cell.boundary.size();
    if (nb == 0) continue;
    std::vector<std::size_t> gidx(nb);
    for (std::size_t b = 0; b < nb; ++b) gidx[b] = global_index.at(cell.boundary[b]);
    for (std::size_t k = 0; k < count; ++k) {
      const std::vector<double>& block = (*cell_blocks[ci])[k];
      std::vector<double>& full = yk_full[k];
      for (std::size_t i = 0; i < nb; ++i)
        for (std::size_t j = 0; j < nb; ++j)
          full[gidx[i] * dim + gidx[j]] += block[i * nb + j];
    }
  }
  return schur_reduce_series(yk_full, np, count);
}

/// Extract every cell of `plan` (block-store-aware), sum the per-cell
/// blocks over the expanded boundary space [ports, promoted] in fixed
/// cell order, and Schur-reduce back to the port space.  Returns an empty
/// optional when the Schur DC seam block is singular; rethrows the first
/// cell extraction failure (by cell order) otherwise.  With `out_blocks`
/// non-null, the per-cell blocks are handed out for the plan memo.
std::optional<std::vector<std::vector<double>>> extract_plan(
    circuit::Netlist& numeric, const CellPlan& plan,
    const std::vector<NodeId>& remapped_ports, std::size_t count,
    sweep::ThreadPool* pool, BlockStore* store,
    std::vector<CellBlocks>* out_blocks = nullptr) {
  std::vector<CellBlocks> cell_blocks(plan.cells.size());
  std::atomic<std::uint64_t> reused{0}, built{0};
  auto extract_cell = [&](std::size_t ci, sweep::ThreadPool* inner) {
    const Cell& cell = plan.cells[ci];
    const std::size_t nb = cell.boundary.size();
    if (nb == 0) return;  // no boundary contact: zero contribution
    std::string key;
    if (store) {
      key = cell_key(cell, count);
      if (auto cached = store->load(key, nb, count)) {
        cell_blocks[ci] =
            std::make_shared<const std::vector<std::vector<double>>>(std::move(*cached));
        reused.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    CellCircuit cc = build_cell_circuit(numeric, cell, plan);
    auto fresh = std::make_shared<const std::vector<std::vector<double>>>(
        port_admittance_moments_inplace(cc.circuit, cc.boundary_local, count, inner));
    built.fetch_add(1, std::memory_order_relaxed);
    if (store) store->store(key, nb, *fresh);
    cell_blocks[ci] = std::move(fresh);
  };

  // One cell: the existing bit-identical column parallelism applies
  // inside it.  Several cells: parallelize across cells with serial
  // columns — each cell's blocks are computed by exactly one thread, so
  // the result never depends on the split.
  if (plan.cells.size() == 1 || pool == nullptr) {
    for (std::size_t ci = 0; ci < plan.cells.size(); ++ci)
      extract_cell(ci, plan.cells.size() == 1 ? pool : nullptr);
  } else {
    std::vector<std::exception_ptr> errors(plan.cells.size());
    pool->parallel_chunks(plan.cells.size(),
                          [&](std::size_t, std::size_t begin, std::size_t end) {
                            for (std::size_t ci = begin; ci < end; ++ci) {
                              try {
                                extract_cell(ci, nullptr);
                              } catch (...) {
                                errors[ci] = std::current_exception();
                              }
                            }
                          });
    for (const auto& err : errors)
      if (err) std::rethrow_exception(err);
  }
  // The reused/built counters describe block-store traffic, so they only
  // move when a store is attached: plain builds stay counter-silent and
  // run-twice health reports stay byte-identical.
  if (store != nullptr) {
    auto& counters = health::global_counters();
    counters.partition_blocks_reused.fetch_add(reused.load(), std::memory_order_relaxed);
    counters.partition_blocks_built.fetch_add(built.load(), std::memory_order_relaxed);
  }

  auto reduced = sum_and_reduce(plan, remapped_ports, cell_blocks, count);
  if (reduced && out_blocks) *out_blocks = std::move(cell_blocks);
  return reduced;
}

// ---- Process-wide plan/block memo.
//
// Planning, the numeric-netlist remap and the clean-cell disk round trip
// are all O(circuit) — they would cap the incremental speedup no matter
// how little actually changed.  The memo keys the *structure* of the
// numeric partition (element kinds/names/terminals, ports, moment count,
// cell target, block dir — everything except element values) and caches
// the remapped netlist, the cell plan and the latest per-cell blocks.  A
// rebuild after a value edit then reduces to: diff the value vectors,
// re-key and re-extract only the dirty cells, and re-run the fixed-order
// summation — identical arithmetic to a cold build of the edited netlist,
// because clean blocks are the very vectors a cold build would reload
// from the store and dirty cells are extracted from the same canonical
// cell circuits.  Entries are immutable and shared; a hit installs a
// fresh entry with updated values/blocks.

struct PlanMemoStructure {
  circuit::Netlist numeric;  ///< element values are the creation snapshot
  std::vector<NodeId> remapped_ports;
  CellPlan plan;
  std::vector<std::size_t> cell_of;  ///< numeric element -> owning cell
};

struct PlanMemoEntry {
  std::shared_ptr<const PlanMemoStructure> structure;
  std::vector<double> values;  ///< per numeric element, netlist order
  std::vector<CellBlocks> blocks;  ///< per cell; null when no boundary
};

std::mutex g_plan_memo_mu;
/// Small LRU, most recently used last.  The memo holds whole numeric
/// netlists and moment blocks, so the cap stays low; an evicted entry
/// costs one re-plan, never correctness.
std::vector<std::pair<std::string, std::shared_ptr<const PlanMemoEntry>>> g_plan_memo;
constexpr std::size_t kPlanMemoCap = 8;

std::shared_ptr<const PlanMemoEntry> plan_memo_find(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_plan_memo_mu);
  for (auto it = g_plan_memo.begin(); it != g_plan_memo.end(); ++it) {
    if (it->first != key) continue;
    auto entry = it->second;
    std::rotate(it, it + 1, g_plan_memo.end());
    return entry;
  }
  return nullptr;
}

void plan_memo_put(const std::string& key, std::shared_ptr<const PlanMemoEntry> entry) {
  std::lock_guard<std::mutex> lock(g_plan_memo_mu);
  for (auto it = g_plan_memo.begin(); it != g_plan_memo.end(); ++it) {
    if (it->first != key) continue;
    it->second = std::move(entry);
    std::rotate(it, it + 1, g_plan_memo.end());
    return;
  }
  g_plan_memo.emplace_back(key, std::move(entry));
  if (g_plan_memo.size() > kPlanMemoCap) g_plan_memo.erase(g_plan_memo.begin());
}

void plan_memo_insert(const std::string& key, circuit::Netlist numeric,
                      std::vector<NodeId> remapped_ports, CellPlan plan,
                      std::vector<double> values, std::vector<CellBlocks> blocks) {
  auto structure = std::make_shared<PlanMemoStructure>();
  structure->cell_of.assign(numeric.elements().size(), 0);
  for (std::size_t ci = 0; ci < plan.cells.size(); ++ci)
    for (const std::size_t i : plan.cells[ci].elements) structure->cell_of[i] = ci;
  structure->numeric = std::move(numeric);
  structure->remapped_ports = std::move(remapped_ports);
  structure->plan = std::move(plan);
  auto entry = std::make_shared<PlanMemoEntry>();
  entry->structure = std::move(structure);
  entry->values = std::move(values);
  entry->blocks = std::move(blocks);
  plan_memo_put(key, std::move(entry));
}

/// Rebuild from a memo entry: re-extract only the cells whose member
/// values changed.  Returns an empty optional when the hit path cannot
/// prove cold-equivalence cheaply — a dirty cell hits the singular-Y0
/// ladder or the seam pivot degenerates — in which case the caller runs
/// the full path, whose fallback ladder is a pure function of the edited
/// netlist (exactly what a cold build would do).
std::optional<std::vector<std::vector<double>>> plan_memo_rebuild(
    const PlanMemoEntry& e, const std::string& memo_key,
    const std::vector<double>& cur, std::size_t count, const ExtractOptions& opts) {
  const PlanMemoStructure& s = *e.structure;
  if (cur.size() != e.values.size()) return std::nullopt;

  std::vector<char> dirty(s.plan.cells.size(), 0);
  for (std::size_t i = 0; i < cur.size(); ++i)
    if (cur[i] != e.values[i]) dirty[s.cell_of[i]] = 1;

  BlockStore store(opts.block_dir);
  std::vector<CellBlocks> blocks = e.blocks;
  std::uint64_t reused = 0, built = 0;
  // Mirror extract_plan's parallelism rule: the inner column pool is only
  // used when the plan has a single cell, so hit and cold builds run the
  // same arithmetic for any thread count.
  sweep::ThreadPool* inner = s.plan.cells.size() == 1 ? opts.pool : nullptr;
  try {
    for (std::size_t ci = 0; ci < s.plan.cells.size(); ++ci) {
      const Cell& cell = s.plan.cells[ci];
      const std::size_t nb = cell.boundary.size();
      if (nb == 0) continue;
      if (!dirty[ci]) {
        ++reused;
        continue;
      }
      const std::string key = cell_key_with_values(cell, cur, count);
      if (auto cached = store.load(key, nb, count)) {
        blocks[ci] =
            std::make_shared<const std::vector<std::vector<double>>>(std::move(*cached));
        ++reused;
        continue;
      }
      CellCircuit cc = build_cell_circuit(s.numeric, cell, s.plan, cur);
      auto fresh = std::make_shared<const std::vector<std::vector<double>>>(
          port_admittance_moments_inplace(cc.circuit, cc.boundary_local, count, inner));
      store.store(key, nb, *fresh);
      blocks[ci] = std::move(fresh);
      ++built;
    }
  } catch (const health::FailError& err) {
    if (err.fail_class() != health::FailClass::kSingularY0) throw;
    return std::nullopt;
  }

  auto reduced = sum_and_reduce(s.plan, s.remapped_ports, blocks, count);
  if (!reduced) return std::nullopt;

  auto& counters = health::global_counters();
  counters.partition_blocks_reused.fetch_add(reused, std::memory_order_relaxed);
  counters.partition_blocks_built.fetch_add(built, std::memory_order_relaxed);

  auto next = std::make_shared<PlanMemoEntry>();
  next->structure = e.structure;
  next->values = cur;
  next->blocks = std::move(blocks);
  plan_memo_put(memo_key, std::move(next));
  return reduced;
}

}  // namespace

void clear_plan_cache() {
  std::lock_guard<std::mutex> lock(g_plan_memo_mu);
  g_plan_memo.clear();
}

std::vector<std::vector<double>> MomentPartitioner::numeric_port_moments(
    std::size_t count, sweep::ThreadPool* pool) const {
  ExtractOptions opts;
  opts.pool = pool;
  return numeric_port_moments(count, opts);
}

std::vector<std::vector<double>> MomentPartitioner::numeric_port_moments(
    std::size_t count, const ExtractOptions& opts) const {
  const std::size_t m = ports_.size();

  std::vector<bool> is_symbolic(netlist_->elements().size(), false);
  for (const auto& s : symbols_) is_symbolic[s.element_index] = true;

  // With a block store attached, try the process-wide plan memo first: a
  // structural fingerprint of the numeric partition (values excluded)
  // keyed against the cached plan lets a value edit skip the remap, the
  // planning pass and every clean cell.  The fingerprint streams node
  // *ids* rather than names — interning is per-name, so the id pattern
  // pins the numeric netlist's structure, and cell extraction only ever
  // sees canonical labels.
  const bool use_memo = !opts.block_dir.empty();
  std::string memo_key;
  std::vector<double> cur_values;
  if (use_memo) {
    std::string buf;
    buf.reserve(64 * netlist_->elements().size() + 256);
    enc::put_str(buf, "plan-memo-v1");
    enc::put_u64(buf, count);
    enc::put_u64(buf, opts.cell_target);
    enc::put_str(buf, opts.block_dir);
    enc::put_u64(buf, netlist_->num_nodes());
    enc::put_u64(buf, ports_.size());
    for (const NodeId p : ports_) enc::put_u64(buf, p);
    for (std::size_t i = 0; i < netlist_->elements().size(); ++i) {
      if (is_symbolic[i] || i == input_element_) continue;
      const Element& e = netlist_->elements()[i];
      if (e.kind == ElementKind::kCurrentSource) continue;  // open in numeric
      enc::put_u8(buf, static_cast<std::uint8_t>(e.kind));
      enc::put_str(buf, e.name);
      enc::put_u64(buf, e.pos);
      enc::put_u64(buf, e.neg);
      switch (e.kind) {
        case ElementKind::kVccs:
        case ElementKind::kVcvs:
          enc::put_u64(buf, e.ctrl_pos);
          enc::put_u64(buf, e.ctrl_neg);
          break;
        case ElementKind::kCccs:
        case ElementKind::kCcvs:
          enc::put_str(buf, e.ctrl_source);
          break;
        case ElementKind::kMutual:
          enc::put_str(buf, e.ctrl_source);
          enc::put_str(buf, e.ctrl_source2);
          break;
        default:
          break;
      }
      // Values that survive into the numeric netlist, in its element
      // order: non-input V sources are zeroed there, so a parent V-source
      // value edit correctly dirties nothing.
      cur_values.push_back(e.kind == ElementKind::kVoltageSource ? 0.0 : e.value);
    }
    memo_key = enc::digest_hex(buf);
    if (const auto entry = plan_memo_find(memo_key)) {
      if (auto reduced = plan_memo_rebuild(*entry, memo_key, cur_values, count, opts))
        return std::move(*reduced);
    }
  }

  // Numeric partition: every element except the symbolic ones and the
  // input source, plus one grounding voltage source per port.  Node names
  // are re-interned, so ports are re-resolved by name.
  Netlist numeric;

  auto remap = [&](NodeId n) { return numeric.node(netlist_->node_name(n)); };
  for (std::size_t i = 0; i < netlist_->elements().size(); ++i) {
    if (is_symbolic[i] || i == input_element_) continue;
    const Element& e = netlist_->elements()[i];
    switch (e.kind) {
      case ElementKind::kResistor:
        numeric.add_resistor(e.name, remap(e.pos), remap(e.neg), e.value);
        break;
      case ElementKind::kConductance:
        numeric.add_conductance(e.name, remap(e.pos), remap(e.neg), e.value);
        break;
      case ElementKind::kCapacitor:
        numeric.add_capacitor(e.name, remap(e.pos), remap(e.neg), e.value);
        break;
      case ElementKind::kInductor:
        numeric.add_inductor(e.name, remap(e.pos), remap(e.neg), e.value);
        break;
      case ElementKind::kVoltageSource:
        // Non-input V sources stay as 0-valued sources (shorts) — their
        // branch is part of the numeric partition topology.
        numeric.add_voltage_source(e.name, remap(e.pos), remap(e.neg), 0.0);
        break;
      case ElementKind::kCurrentSource:
        break;  // zeroed current source = open circuit
      case ElementKind::kVccs:
        numeric.add_vccs(e.name, remap(e.pos), remap(e.neg), remap(e.ctrl_pos),
                         remap(e.ctrl_neg), e.value);
        break;
      case ElementKind::kVcvs:
        numeric.add_vcvs(e.name, remap(e.pos), remap(e.neg), remap(e.ctrl_pos),
                         remap(e.ctrl_neg), e.value);
        break;
      case ElementKind::kCccs:
        numeric.add_cccs(e.name, remap(e.pos), remap(e.neg), e.ctrl_source, e.value);
        break;
      case ElementKind::kCcvs:
        numeric.add_ccvs(e.name, remap(e.pos), remap(e.neg), e.ctrl_source, e.value);
        break;
      case ElementKind::kMutual:
        numeric.add_mutual(e.name, e.ctrl_source, e.ctrl_source2, e.value);
        break;
    }
  }
  std::vector<NodeId> remapped_ports;
  remapped_ports.reserve(m);
  for (std::size_t p = 0; p < m; ++p) remapped_ports.push_back(remap(ports_[p]));

  BlockStore store(opts.block_dir);
  BlockStore* store_ptr = opts.block_dir.empty() ? nullptr : &store;

  // Promoted plan first; when a BFS seam makes a cell extraction or the
  // Schur DC pivot singular, fall back to whole connected components (no
  // promotion) — the exact grounded-port system of the unsplit partition.
  // Both decisions are pure functions of the netlist, never of the block
  // cache (blocks are only stored after a successful extraction), so cold
  // and incremental builds walk the same ladder.  Only a plan that
  // succeeded without falling back is memoized: a hit replays that plan
  // directly, and cold takes the same branch by purity.
  std::vector<CellBlocks> memo_blocks;
  auto memo_blocks_ptr = use_memo ? &memo_blocks : nullptr;
  bool fell_back = false;
  CellPlan plan =
      plan_cells(numeric, remapped_ports, opts.cell_target, /*allow_promotion=*/true);
  if (!plan.promoted.empty()) {
    try {
      if (auto reduced = extract_plan(numeric, plan, remapped_ports, count, opts.pool,
                                      store_ptr, memo_blocks_ptr)) {
        if (use_memo)
          plan_memo_insert(memo_key, std::move(numeric), std::move(remapped_ports),
                           std::move(plan), std::move(cur_values),
                           std::move(memo_blocks));
        return std::move(*reduced);
      }
    } catch (const health::FailError& e) {
      if (e.fail_class() != health::FailClass::kSingularY0) throw;
    }
    fell_back = true;
    plan = plan_cells(numeric, remapped_ports, opts.cell_target,
                      /*allow_promotion=*/false);
  }
  const CellPlan& component_plan = plan;
  auto reduced = extract_plan(numeric, component_plan, remapped_ports, count, opts.pool,
                              store_ptr, fell_back ? nullptr : memo_blocks_ptr);
  if (!reduced)
    throw health::FailError(health::FailClass::kSingularY0,
                            "numeric_port_moments: seam elimination is singular");
  if (use_memo && !fell_back)
    plan_memo_insert(memo_key, std::move(numeric), std::move(remapped_ports),
                     std::move(plan), std::move(cur_values), std::move(memo_blocks));
  return std::move(*reduced);
}

SymbolicMoments MomentPartitioner::compute(std::size_t count, sweep::ThreadPool* pool) const {
  return compute_all(count, pool).for_output(0);
}

SymbolicMoments MomentPartitioner::compute(std::size_t count,
                                           const ExtractOptions& opts) const {
  return compute_all(count, opts).for_output(0);
}

MultiSymbolicMoments MomentPartitioner::compute_all(std::size_t count,
                                                    sweep::ThreadPool* pool) const {
  ExtractOptions opts;
  opts.pool = pool;
  return compute_all(count, opts);
}

MultiSymbolicMoments MomentPartitioner::compute_all(std::size_t count,
                                                    const ExtractOptions& opts) const {
  if (count == 0) throw std::invalid_argument("MomentPartitioner: count must be >= 1");
  const std::size_t m = ports_.size();
  const std::size_t nvars = symbols_.size();
  const auto yk_numeric = numeric_port_moments(count, opts);

  // ---- Global layout: ports, then aux currents (input V source, symbolic
  // inductor branches).
  GlobalLayout lay;
  lay.num_ports = m;
  std::size_t dim = m;
  const Element& input = netlist_->elements()[input_element_];
  const bool v_input = input.kind == ElementKind::kVoltageSource;
  if (v_input) lay.input_aux = dim++;
  lay.inductor_aux.assign(symbols_.size(), SIZE_MAX);
  for (std::size_t si = 0; si < symbols_.size(); ++si) {
    if (netlist_->elements()[symbols_[si].element_index].kind == ElementKind::kInductor)
      lay.inductor_aux[si] = dim++;
  }
  lay.dim = dim;

  // ---- Assemble global Y_k as polynomial matrices.
  std::vector<PolyMatrix> yg;
  yg.reserve(count);
  for (std::size_t k = 0; k < count; ++k) yg.emplace_back(dim, dim, nvars);

  // Numeric partition blocks (constants).
  for (std::size_t k = 0; k < count; ++k)
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < m; ++j) {
        const double v = yk_numeric[k][i * m + j];
        if (v != 0.0) yg[k](i, j) += Polynomial::constant(nvars, v);
      }

  // Symbolic element stamps (exactly one term per element, paper eqn (10)).
  // AC-grounded rail nodes behave as ground.
  auto pidx = [&](NodeId n) { return port_index(n); };
  auto gnd = [&](NodeId n) { return ac_grounded(n); };
  for (std::size_t si = 0; si < symbols_.size(); ++si) {
    const Element& e = netlist_->elements()[symbols_[si].element_index];
    const Polynomial sym = Polynomial::variable(nvars, si);
    auto stamp2 = [&](PolyMatrix& y, NodeId a, NodeId b) {
      if (!gnd(a)) y(pidx(a), pidx(a)) += sym;
      if (!gnd(b)) y(pidx(b), pidx(b)) += sym;
      if (!gnd(a) && !gnd(b)) {
        y(pidx(a), pidx(b)) -= sym;
        y(pidx(b), pidx(a)) -= sym;
      }
    };
    switch (e.kind) {
      case ElementKind::kResistor:      // symbol is the conductance 1/R
      case ElementKind::kConductance:
        stamp2(yg[0], e.pos, e.neg);
        break;
      case ElementKind::kCapacitor:
        if (count > 1) stamp2(yg[1], e.pos, e.neg);
        break;
      case ElementKind::kInductor: {
        const std::size_t aux = lay.inductor_aux[si];
        const Polynomial one = Polynomial::constant(nvars, 1.0);
        if (!gnd(e.pos)) {
          yg[0](pidx(e.pos), aux) += one;
          yg[0](aux, pidx(e.pos)) += one;
        }
        if (!gnd(e.neg)) {
          yg[0](pidx(e.neg), aux) -= one;
          yg[0](aux, pidx(e.neg)) -= one;
        }
        if (count > 1) yg[1](aux, aux) -= sym;
        break;
      }
      case ElementKind::kVccs: {
        auto add = [&](NodeId r, NodeId c2, double sign) {
          if (gnd(r) || gnd(c2)) return;
          Polynomial t = sym;
          t *= sign;
          yg[0](pidx(r), pidx(c2)) += t;
        };
        add(e.pos, e.ctrl_pos, 1.0);
        add(e.pos, e.ctrl_neg, -1.0);
        add(e.neg, e.ctrl_pos, -1.0);
        add(e.neg, e.ctrl_neg, 1.0);
        break;
      }
      default:
        throw std::logic_error("unsupported symbolic kind slipped through");
    }
  }

  // Input source stamp + excitation vector I_0.
  std::vector<Polynomial> i0(dim, Polynomial(nvars));
  if (v_input) {
    const Polynomial one = Polynomial::constant(nvars, 1.0);
    if (input.pos != kGround) {
      yg[0](pidx(input.pos), lay.input_aux) += one;
      yg[0](lay.input_aux, pidx(input.pos)) += one;
    }
    if (input.neg != kGround) {
      yg[0](pidx(input.neg), lay.input_aux) -= one;
      yg[0](lay.input_aux, pidx(input.neg)) -= one;
    }
    i0[lay.input_aux] = Polynomial::constant(nvars, 1.0);
  } else {
    if (input.pos != kGround) i0[pidx(input.pos)] = Polynomial::constant(nvars, -1.0);
    if (input.neg != kGround) i0[pidx(input.neg)] = Polynomial::constant(nvars, 1.0);
  }

  // ---- Symbolic moment recursion via the adjugate.
  const Polynomial d = determinant(yg[0]);
  if (d.is_zero())
    throw std::runtime_error("MomentPartitioner: det(Y0) is identically zero");
  const PolyMatrix adj = adjugate(yg[0]);

  // N_0 = adj * I_0;  N_k = adj * ( - sum_{j=1..k} Y_j N_{k-j} d^{j-1} ).
  std::vector<std::vector<Polynomial>> n(count);
  n[0] = adj.multiply(i0);
  std::vector<Polynomial> d_pow{Polynomial::constant(nvars, 1.0)};  // d^0, d^1, ...
  for (std::size_t k = 1; k < count; ++k) {
    while (d_pow.size() < k) d_pow.push_back(d_pow.back() * d);
    std::vector<Polynomial> rhs(dim, Polynomial(nvars));
    for (std::size_t j = 1; j <= k; ++j) {
      const auto yj_n = yg[j].multiply(n[k - j]);
      for (std::size_t r = 0; r < dim; ++r) {
        if (yj_n[r].is_zero()) continue;
        rhs[r] -= yj_n[r] * d_pow[j - 1];
      }
    }
    n[k] = adj.multiply(rhs);
  }

  MultiSymbolicMoments out;
  out.symbols = symbols_;
  out.det_y0 = d;
  out.port_count = m;
  out.global_dim = dim;
  out.outputs = output_nodes_;
  out.numerators.resize(output_nodes_.size());
  for (std::size_t o = 0; o < output_nodes_.size(); ++o) {
    const std::size_t out_idx = port_index(output_nodes_[o]);
    out.numerators[o].reserve(count);
    for (std::size_t k = 0; k < count; ++k) out.numerators[o].push_back(n[k][out_idx]);
  }
  return out;
}

}  // namespace awe::part
