#include "partition/cells.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "circuit/content_hash.hpp"
#include "linalg/lu.hpp"

namespace awe::part {

using circuit::Element;
using circuit::ElementKind;
using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;

namespace {

// Bumped whenever the canonical cell encoding changes layout, so stale
// block-store entries from older code can never be mistaken for hits.
constexpr std::uint64_t kCellEncodingVersion = 1;

/// Node terminals of `e` in canonical scan order (mutual couplings have
/// none: they reference their inductors by name).
void element_nodes(const Element& e, std::vector<NodeId>& out) {
  out.clear();
  switch (e.kind) {
    case ElementKind::kMutual:
      return;
    case ElementKind::kVccs:
    case ElementKind::kVcvs:
      out = {e.pos, e.neg, e.ctrl_pos, e.ctrl_neg};
      return;
    default:
      out = {e.pos, e.neg};
      return;
  }
}

struct Dsu {
  std::vector<std::size_t> parent;
  explicit Dsu(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[b] = a;
  }
};

/// Union elements that must never be separated: a branch-current reference
/// (CCCS/CCVS -> controlling V source, mutual -> both inductors) cannot
/// cross a cell boundary, because only the owning cell solves that branch.
void unite_name_refs(const Netlist& numeric, Dsu& dsu) {
  const auto& elems = numeric.elements();
  for (std::size_t i = 0; i < elems.size(); ++i) {
    const Element& e = elems[i];
    auto link = [&](const std::string& name) {
      if (name.empty()) return;
      if (const auto idx = numeric.find_element(name)) dsu.unite(i, *idx);
    };
    switch (e.kind) {
      case ElementKind::kCccs:
      case ElementKind::kCcvs:
        link(e.ctrl_source);
        break;
      case ElementKind::kMutual:
        link(e.ctrl_source);
        link(e.ctrl_source2);
        break;
      default:
        break;
    }
  }
}

}  // namespace

CellPlan plan_cells(const Netlist& numeric, std::span<const NodeId> ports,
                    std::size_t target_elements, bool allow_promotion) {
  const auto& elems = numeric.elements();
  const std::size_t num_nodes = numeric.num_nodes();
  if (target_elements == 0) target_elements = kDefaultCellTargetElements;

  std::vector<char> is_port(num_nodes + 1, 0);
  for (const NodeId p : ports)
    if (p != kGround && p <= num_nodes) is_port[p] = 1;

  // ---- Pinned (AC-ground-equivalent) closure.  A zero-volt source whose
  // far terminal already sits at AC ground pins its near terminal to AC
  // ground too; iterate to closure through source chains.  Ports stay
  // excitable and terminals of branch-referenced sources keep their KCL
  // rows, so neither may be pinned.
  CellPlan plan;
  plan.pinned.assign(num_nodes + 1, 0);
  {
    std::unordered_set<std::string> referenced;
    for (const Element& e : elems)
      if (e.kind == ElementKind::kCccs || e.kind == ElementKind::kCcvs)
        referenced.insert(e.ctrl_source);
    std::vector<char> unpinnable(num_nodes + 1, 0);
    for (NodeId n = 0; n <= num_nodes; ++n) unpinnable[n] = is_port[n];
    for (const Element& e : elems) {
      if (e.kind != ElementKind::kVoltageSource) continue;
      if (referenced.find(e.name) == referenced.end()) continue;
      unpinnable[e.pos] = 1;
      unpinnable[e.neg] = 1;
    }
    auto at_ground = [&](NodeId n) { return n == kGround || plan.pinned[n]; };
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Element& e : elems) {
        if (e.kind != ElementKind::kVoltageSource || e.value != 0.0) continue;
        if (referenced.find(e.name) != referenced.end()) continue;
        if (at_ground(e.pos) && !at_ground(e.neg) && !unpinnable[e.neg]) {
          plan.pinned[e.neg] = 1;
          changed = true;
        }
        if (at_ground(e.neg) && !at_ground(e.pos) && !unpinnable[e.pos]) {
          plan.pinned[e.pos] = 1;
          changed = true;
        }
      }
    }
  }

  auto internal_node = [&](NodeId n) {
    return n != kGround && !is_port[n] && !plan.pinned[n];
  };

  // ---- Atoms (name-reference groups) and connected components.
  Dsu atoms(elems.size());
  unite_name_refs(numeric, atoms);
  Dsu comp(elems.size());
  unite_name_refs(numeric, comp);
  {
    std::vector<std::size_t> last_at_node(num_nodes + 1, SIZE_MAX);
    std::vector<NodeId> nodes;
    for (std::size_t i = 0; i < elems.size(); ++i) {
      element_nodes(elems[i], nodes);
      for (const NodeId n : nodes) {
        if (!internal_node(n)) continue;
        if (last_at_node[n] != SIZE_MAX) comp.unite(last_at_node[n], i);
        last_at_node[n] = i;
      }
    }
  }

  // Components keyed by their smallest element name, members name-sorted.
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_root;
  for (std::size_t i = 0; i < elems.size(); ++i) by_root[comp.find(i)].push_back(i);
  // One global name sort up front; every later ordering compares integer
  // ranks instead of strings (plan_cells is on the incremental hot path).
  std::vector<std::size_t> name_rank(elems.size());
  {
    std::vector<std::size_t> order(elems.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return elems[a].name < elems[b].name;
    });
    for (std::size_t k = 0; k < order.size(); ++k) name_rank[order[k]] = k;
  }
  auto name_less = [&](std::size_t a, std::size_t b) {
    return name_rank[a] < name_rank[b];
  };
  std::vector<std::vector<std::size_t>> components;
  components.reserve(by_root.size());
  for (auto& [root, members] : by_root) {
    std::sort(members.begin(), members.end(), name_less);
    components.push_back(std::move(members));
  }

  // ---- Split oversized components by a deterministic FIFO wavefront over
  // atoms.  The wave expands in topological distance from the smallest-name
  // seed and is carried across cell closings, so consecutive cells cover
  // contiguous regions of the element graph and the seam (promoted-node)
  // count stays proportional to the number of cuts, not to the cell size.
  // (A best-name-first frontier is NOT local: name prefixes would steer
  // the wave through one element family first and leave the rest of the
  // component as one giant boundary.)
  std::vector<std::vector<std::size_t>> cell_elems;
  for (auto& component : components) {
    if (!allow_promotion || component.size() <= target_elements) {
      cell_elems.push_back(std::move(component));
      continue;
    }
    // Atoms of this component, ordered by their smallest element name.
    std::unordered_map<std::size_t, std::vector<std::size_t>> atom_by_root;
    for (const std::size_t i : component) atom_by_root[atoms.find(i)].push_back(i);
    std::vector<std::vector<std::size_t>> atom_list;
    atom_list.reserve(atom_by_root.size());
    for (auto& [root, members] : atom_by_root) atom_list.push_back(std::move(members));
    for (auto& a : atom_list) std::sort(a.begin(), a.end(), name_less);
    std::sort(atom_list.begin(), atom_list.end(),
              [&](const auto& a, const auto& b) { return name_less(a[0], b[0]); });

    std::unordered_map<NodeId, std::vector<std::size_t>> node_atoms;
    std::vector<NodeId> nodes;
    for (std::size_t ai = 0; ai < atom_list.size(); ++ai)
      for (const std::size_t i : atom_list[ai]) {
        element_nodes(elems[i], nodes);
        for (const NodeId n : nodes)
          if (internal_node(n)) node_atoms[n].push_back(ai);
      }

    const std::size_t n_elems = component.size();
    const std::size_t n_cells = (n_elems + target_elements - 1) / target_elements;
    const std::size_t per_cell = (n_elems + n_cells - 1) / n_cells;

    // `queued` doubles as the visited mark: an atom enters the queue once,
    // in the deterministic order the wave discovers it (neighbors of each
    // expansion are pushed in atom-name order via node_atoms).
    std::vector<char> queued(atom_list.size(), 0);
    std::deque<std::size_t> frontier;
    std::vector<std::size_t> cur;
    std::size_t cur_size = 0;
    std::size_t next_seed = 0;
    std::size_t remaining = atom_list.size();
    while (remaining > 0) {
      std::size_t ai;
      if (!frontier.empty()) {
        ai = frontier.front();
        frontier.pop_front();
      } else {
        while (queued[next_seed]) ++next_seed;
        ai = next_seed;
        queued[ai] = 1;
      }
      --remaining;
      for (const std::size_t i : atom_list[ai]) {
        cur.push_back(i);
        element_nodes(elems[i], nodes);
        for (const NodeId n : nodes) {
          if (!internal_node(n)) continue;
          for (const std::size_t nb : node_atoms[n]) {
            if (queued[nb]) continue;
            queued[nb] = 1;
            frontier.push_back(nb);
          }
        }
      }
      cur_size += atom_list[ai].size();
      if (cur_size >= per_cell) {
        std::sort(cur.begin(), cur.end(), name_less);
        cell_elems.push_back(std::move(cur));
        cur.clear();
        cur_size = 0;
      }
    }
    if (!cur.empty()) {
      std::sort(cur.begin(), cur.end(), name_less);
      cell_elems.push_back(std::move(cur));
    }
  }
  std::sort(cell_elems.begin(), cell_elems.end(),
            [&](const auto& a, const auto& b) { return name_less(a[0], b[0]); });

  // ---- Internal nodes shared by several cells (BFS seams) are promoted
  // to boundary nodes: each touching cell grounds them like a port and the
  // Schur complement eliminates them after summation.
  {
    std::unordered_map<NodeId, std::size_t> first_cell;
    std::unordered_set<NodeId> promoted;
    std::vector<NodeId> nodes;
    for (std::size_t ci = 0; ci < cell_elems.size(); ++ci)
      for (const std::size_t i : cell_elems[ci]) {
        element_nodes(elems[i], nodes);
        for (const NodeId n : nodes) {
          if (!internal_node(n)) continue;
          const auto [it, inserted] = first_cell.emplace(n, ci);
          if (!inserted && it->second != ci) promoted.insert(n);
        }
      }
    plan.promoted.assign(promoted.begin(), promoted.end());
    std::sort(plan.promoted.begin(), plan.promoted.end());
  }
  std::vector<char> is_boundary(num_nodes + 1, 0);
  for (NodeId n = 0; n <= num_nodes; ++n) is_boundary[n] = is_port[n];
  for (const NodeId n : plan.promoted) is_boundary[n] = 1;

  // ---- Canonical encoding per cell: scan elements in name order, label
  // nodes by first encounter (ground and pinned nodes collapse to label
  // 0), and append the boundary labels.  The encoding — and therefore the
  // block-store key — is invariant under node renames and element
  // addition order, and changes exactly when the cell's electrical
  // content or boundary does.
  plan.cells.reserve(cell_elems.size());
  for (auto& members : cell_elems) {
    Cell cell;
    cell.elements = std::move(members);
    std::string& buf = cell.encoding;
    enc::put_u64(buf, kCellEncodingVersion);
    std::unordered_map<NodeId, std::uint32_t> label;
    std::vector<std::uint32_t> boundary_labels;
    auto label_of = [&](NodeId n) -> std::uint32_t {
      if (n == kGround || plan.pinned[n]) return 0;
      const auto [it, inserted] =
          label.emplace(n, static_cast<std::uint32_t>(label.size() + 1));
      if (inserted && is_boundary[n]) {
        cell.boundary.push_back(n);
        boundary_labels.push_back(it->second);
      }
      return it->second;
    };
    enc::put_u64(buf, cell.elements.size());
    std::vector<NodeId> nodes;
    for (const std::size_t i : cell.elements) {
      const Element& e = elems[i];
      enc::put_u8(buf, static_cast<std::uint8_t>(e.kind));
      enc::put_str(buf, e.name);
      element_nodes(e, nodes);
      for (const NodeId n : nodes) enc::put_u32(buf, label_of(n));
      switch (e.kind) {
        case ElementKind::kCccs:
        case ElementKind::kCcvs:
          enc::put_str(buf, e.ctrl_source);
          break;
        case ElementKind::kMutual:
          enc::put_str(buf, e.ctrl_source);
          enc::put_str(buf, e.ctrl_source2);
          break;
        default:
          break;
      }
      cell.value_slots.emplace_back(i, buf.size());
      enc::put_f64(buf, e.value);
    }
    enc::put_u32(buf, boundary_labels.size());
    for (const std::uint32_t l : boundary_labels) enc::put_u32(buf, l);
    plan.cells.push_back(std::move(cell));
  }
  return plan;
}

std::string cell_key(const Cell& cell, std::size_t moment_count) {
  std::string buf = cell.encoding;
  enc::put_u64(buf, moment_count);
  return enc::digest_hex(buf);
}

std::string cell_encoding_with_values(const Cell& cell,
                                      std::span<const double> values) {
  std::string buf = cell.encoding;
  for (const auto& [elem, offset] : cell.value_slots) {
    std::string patch;
    enc::put_f64(patch, values[elem]);
    buf.replace(offset, patch.size(), patch);
  }
  return buf;
}

std::string cell_key_with_values(const Cell& cell, std::span<const double> values,
                                 std::size_t moment_count) {
  std::string buf = cell_encoding_with_values(cell, values);
  enc::put_u64(buf, moment_count);
  return enc::digest_hex(buf);
}

CellCircuit build_cell_circuit(const Netlist& numeric, const Cell& cell,
                               const CellPlan& plan,
                               std::span<const double> values) {
  const auto& elems = numeric.elements();
  CellCircuit out;
  std::unordered_map<NodeId, NodeId> local;  // numeric id -> cell-local id
  // Same first-encounter order as the encoding scan, but interned as
  // "n<label>": the cell circuit is a function of the canonical labels
  // alone, so a cached block is valid for any netlist with this encoding.
  auto local_of = [&](NodeId n) -> NodeId {
    if (n == kGround || plan.pinned[n]) return kGround;
    const auto it = local.find(n);
    if (it != local.end()) return it->second;
    const NodeId id = out.circuit.node("n" + std::to_string(local.size() + 1));
    local.emplace(n, id);
    return id;
  };
  for (const std::size_t i : cell.elements) {
    const Element& e = elems[i];
    const double value = values.empty() ? e.value : values[i];
    // Interning order must match the encoding's first-encounter label
    // order exactly, so terminals are resolved in sequence before the
    // add_* call (argument evaluation order is unspecified).
    NodeId a = kGround, b = kGround, cp = kGround, cn = kGround;
    if (e.kind != ElementKind::kMutual) {
      a = local_of(e.pos);
      b = local_of(e.neg);
    }
    if (e.kind == ElementKind::kVccs || e.kind == ElementKind::kVcvs) {
      cp = local_of(e.ctrl_pos);
      cn = local_of(e.ctrl_neg);
    }
    switch (e.kind) {
      case ElementKind::kResistor:
        out.circuit.add_resistor(e.name, a, b, value);
        break;
      case ElementKind::kConductance:
        out.circuit.add_conductance(e.name, a, b, value);
        break;
      case ElementKind::kCapacitor:
        out.circuit.add_capacitor(e.name, a, b, value);
        break;
      case ElementKind::kInductor:
        out.circuit.add_inductor(e.name, a, b, value);
        break;
      case ElementKind::kVoltageSource:
        out.circuit.add_voltage_source(e.name, a, b, value);
        break;
      case ElementKind::kCurrentSource:
        out.circuit.add_current_source(e.name, a, b, value);
        break;
      case ElementKind::kVccs:
        out.circuit.add_vccs(e.name, a, b, cp, cn, e.value);
        break;
      case ElementKind::kVcvs:
        out.circuit.add_vcvs(e.name, a, b, cp, cn, e.value);
        break;
      case ElementKind::kCccs:
        out.circuit.add_cccs(e.name, a, b, e.ctrl_source, e.value);
        break;
      case ElementKind::kCcvs:
        out.circuit.add_ccvs(e.name, a, b, e.ctrl_source, e.value);
        break;
      case ElementKind::kMutual:
        out.circuit.add_mutual(e.name, e.ctrl_source, e.ctrl_source2, e.value);
        break;
    }
  }
  out.boundary_local.reserve(cell.boundary.size());
  for (const NodeId n : cell.boundary) out.boundary_local.push_back(local.at(n));
  return out;
}

std::optional<std::vector<std::vector<double>>> schur_reduce_series(
    const std::vector<std::vector<double>>& yk, std::size_t np, std::size_t count) {
  if (yk.empty()) return yk;
  const std::size_t dim_sq = yk[0].size();
  std::size_t dim = np;
  while (dim * dim < dim_sq) ++dim;
  const std::size_t ne = dim - np;
  if (ne == 0) return yk;

  linalg::Matrix d0(ne, ne);
  for (std::size_t r = 0; r < ne; ++r)
    for (std::size_t c = 0; c < ne; ++c) d0(r, c) = yk[0][(np + r) * dim + (np + c)];
  const auto lu = linalg::LuFactorization::factor(std::move(d0));
  if (!lu) return std::nullopt;

  // f[k] is the ne x np series of D^{-1} C, solved order by order against
  // the single factored DC seam block (factor once, solve many).
  std::vector<std::vector<double>> f(count, std::vector<double>(ne * np, 0.0));
  std::vector<double> rhs(ne);
  for (std::size_t k = 0; k < count; ++k) {
    for (std::size_t c = 0; c < np; ++c) {
      for (std::size_t r = 0; r < ne; ++r) rhs[r] = yk[k][(np + r) * dim + c];
      for (std::size_t j = 1; j <= k; ++j) {
        const std::vector<double>& fk = f[k - j];
        for (std::size_t r = 0; r < ne; ++r) {
          double acc = 0.0;
          for (std::size_t e = 0; e < ne; ++e)
            acc += yk[j][(np + r) * dim + (np + e)] * fk[e * np + c];
          rhs[r] -= acc;
        }
      }
      lu->solve_in_place(rhs);
      for (std::size_t r = 0; r < ne; ++r) f[k][r * np + c] = rhs[r];
    }
  }

  std::vector<std::vector<double>> out(count, std::vector<double>(np * np, 0.0));
  for (std::size_t k = 0; k < count; ++k)
    for (std::size_t i = 0; i < np; ++i)
      for (std::size_t c = 0; c < np; ++c) {
        double acc = yk[k][i * dim + c];
        for (std::size_t j = 0; j <= k; ++j)
          for (std::size_t e = 0; e < ne; ++e)
            acc -= yk[j][i * dim + (np + e)] * f[k - j][e * np + c];
        out[k][i * np + c] = acc;
      }
  return out;
}

}  // namespace awe::part
