// N-port AWE macromodels of interconnect (Kim, Gopal & Pillage's "AWE
// macromodels" idea, built on the same port-moment machinery as the
// partitioner).
//
// A subnetwork seen from a set of ports is reduced to its admittance
// moment expansion Y(s) = Y_0 + Y_1 s + ... ; each entry y_ij(s) is then
// fitted with a low-order Padé (pole/residue + direct terms), producing a
// compact frequency/time-domain macromodel that can replace the full
// subnetwork in a larger simulation.  Here it serves as a standalone
// reduction facility and as the reference interpretation of the numeric
// blocks the partitioner stitches into the composite symbolic system.
#pragma once

#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include "awe/rom.hpp"
#include "circuit/netlist.hpp"

namespace awe::sweep {
class ThreadPool;
}

namespace awe::part {

class PortMacromodel {
 public:
  struct Options {
    std::size_t order = 2;      ///< Padé order per entry
    std::size_t moments = 8;    ///< moments computed per entry (>= 2*order)
  };

  /// Reduce `netlist` as seen from `port_nodes` (each port is measured
  /// against ground; independent sources inside are zeroed).  Throws when
  /// the grounded-port DC matrix is singular.  `pool` (optional)
  /// parallelizes both the port-moment extraction columns and the
  /// per-entry Padé fits; the result is identical whatever the thread
  /// count (entries are independent and written to disjoint slots).
  static PortMacromodel build(const circuit::Netlist& netlist,
                              const std::vector<circuit::NodeId>& port_nodes,
                              const Options& opts, sweep::ThreadPool* pool = nullptr);

  /// One subnetwork of a multi-partition reduction request.
  struct PartitionSpec {
    const circuit::Netlist* netlist = nullptr;
    std::vector<circuit::NodeId> ports;
  };

  /// Reduce several independent partitions, fanning WHOLE-partition builds
  /// (each factors its own MNA matrix, runs its own moment recursion and
  /// entry fits) across `pool`.  This is the coarse grain the build
  /// pipeline scales on — each partition's sparse LU factor is serial, so
  /// only partition-level fan-out turns extra threads into wall-clock
  /// speedup.  Results are positionally matched to `parts` and identical
  /// to calling build() per partition, whatever the thread count.  With a
  /// single partition the pool is delegated to the inner column/fit
  /// parallelism instead.  The first partition failure is rethrown.
  static std::vector<PortMacromodel> build_many(
      const std::vector<PartitionSpec>& parts, const Options& opts,
      sweep::ThreadPool* pool = nullptr);

  std::size_t port_count() const { return ports_; }

  /// Raw admittance moment blocks Y_k (row-major ports x ports).
  const std::vector<std::vector<double>>& moment_blocks() const { return yk_; }

  /// y_ij(s) evaluated from the reduced pole/residue model.
  std::complex<double> admittance(std::size_t i, std::size_t j,
                                  std::complex<double> s) const;

  /// The reduced model of one entry (poles/residues + direct/linear terms).
  struct EntryModel {
    /// y(s) ~= d0 + d1 * s + sum_k r_k / (s - p_k).
    double d0 = 0.0;
    double d1 = 0.0;
    linalg::CVector poles;
    linalg::CVector residues;
  };
  const EntryModel& entry(std::size_t i, std::size_t j) const;

 private:
  PortMacromodel() = default;

  std::size_t ports_ = 0;
  std::vector<std::vector<double>> yk_;     // [k][i*ports+j]
  std::vector<EntryModel> entries_;         // [i*ports+j]
};

}  // namespace awe::part
