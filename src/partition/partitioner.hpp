// Moment-level circuit partitioning (paper §2.4, after Alaybeyi, Bracken,
// Lee, Raghavan, Trihy & Rohrer, "Exploiting Partitioning in AWE").
//
// The circuit is split into a large numeric partition — reduced, purely
// numerically, to the Maclaurin moment expansion of its multiport
// admittance parameters Y(s) = Y_0 + Y_1 s + ... — and per-element
// symbolic partitions whose port representation is *finite* under MNA
// (exactly one term per element: conductances/capacitances in Y_0/Y_1,
// inductances through an impedance branch row).  Ports are the nodes
// touched by symbolic elements plus the preserved input and output ports.
//
// The composite moments follow from matching powers of s in
//   (Y_0 + Y_1 s + ...)(V_0 + V_1 s + ...) = I_0 :
//   Y_0 V_0 = I_0,    Y_0 V_k = - sum_{j=1..k} Y_j V_{k-j},
// solved symbolically over the small port system via the adjugate, keeping
// every intermediate a polynomial:  V_k = N_k / det(Y_0)^{k+1}.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "symbolic/poly_matrix.hpp"
#include "symbolic/rational.hpp"

namespace awe::sweep {
class ThreadPool;
}

namespace awe::part {

/// Knobs for the numeric-partition extraction.  The extraction is always
/// cell-based (see cells.hpp): the numeric partition is decomposed into
/// canonical cells, each extracted independently, summed, and Schur-
/// reduced back to the port space — so its result is a pure function of
/// the netlist whatever the thread count or block-cache state.
struct ExtractOptions {
  /// Optional worker pool.  One cell in the plan parallelizes the
  /// per-port excitation columns; several cells parallelize across cells
  /// (serial columns inside each) — both bit-identical to serial.
  sweep::ThreadPool* pool = nullptr;
  /// Persistent per-cell block store directory; empty disables the store
  /// (blocks are always recomputed).  Clean cells reload bit-identical
  /// blocks, so an incremental rebuild equals a cold build byte for byte.
  std::string block_dir;
  /// Cell split target in elements; 0 means kDefaultCellTargetElements.
  std::size_t cell_target = 0;
};

/// Drop the process-wide structural plan/block memo that accelerates
/// repeated block-store builds of the same circuit structure.  Purely an
/// optimization cache — clearing it never changes any result.  Test hook:
/// lets a test force the next build through the on-disk block store (the
/// memo serves clean cells from memory without re-probing the disk).
void clear_plan_cache();

/// How an element's netlist value maps onto its internal symbol variable.
/// Resistors are represented internally by their conductance (the MNA
/// stamp must stay linear in the symbol), so their transform is 1/value.
struct SymbolSpec {
  std::size_t element_index = 0;
  std::string name;          ///< element name (used as the symbol name)
  bool reciprocal = false;   ///< internal symbol = 1 / element value
};

/// The result of a symbolic moment computation.
struct SymbolicMoments {
  std::vector<SymbolSpec> symbols;
  /// Numerators N_k (component picked at the output port), k = 0..count-1.
  std::vector<symbolic::Polynomial> numerators;
  /// Shared denominator base d = det(Y_0); moment k equals
  /// numerators[k] / d^{k+1}.
  symbolic::Polynomial det_y0;
  std::size_t port_count = 0;   ///< size of the port node set
  std::size_t global_dim = 0;   ///< ports + global auxiliary currents

  std::size_t count() const { return numerators.size(); }
  std::vector<std::string> symbol_names() const;

  /// Moment k as an explicit rational function (for closed forms/printing).
  symbolic::RationalFunction moment(std::size_t k) const;

  /// Map raw element values (one per symbol, in symbols[] order) to the
  /// internal symbol variables (applies reciprocal transforms).
  std::vector<double> to_symbol_values(std::span<const double> element_values) const;

  /// Evaluate all moments numerically at the given element values —
  /// the *uncompiled* reference path (term-by-term polynomial evaluation);
  /// the compiled path lives in awe::core::CompiledModel.
  std::vector<double> evaluate(std::span<const double> element_values) const;
};

/// Symbolic moments of several outputs sharing one partition: the numeric
/// reduction, det(Y0) and the adjugate recursion are computed once; only
/// the selection of the output component differs.
struct MultiSymbolicMoments {
  std::vector<SymbolSpec> symbols;
  std::vector<circuit::NodeId> outputs;
  /// numerators[o][k] is N_k of output o; moment = N_k / det_y0^{k+1}.
  std::vector<std::vector<symbolic::Polynomial>> numerators;
  symbolic::Polynomial det_y0;
  std::size_t port_count = 0;
  std::size_t global_dim = 0;

  /// View of one output as a standalone SymbolicMoments.
  SymbolicMoments for_output(std::size_t output_index) const;
};

class MomentPartitioner {
 public:
  /// `symbol_elements` are netlist element names to treat symbolically
  /// (kinds R, conductance, C, L, VCCS).  Throws std::invalid_argument on
  /// unknown/unsupported elements, unknown input source or ground output.
  MomentPartitioner(const circuit::Netlist& netlist,
                    std::vector<std::string> symbol_elements, std::string input_source,
                    circuit::NodeId output_node);

  /// Multi-output variant: every output node becomes a preserved port.
  MomentPartitioner(const circuit::Netlist& netlist,
                    std::vector<std::string> symbol_elements, std::string input_source,
                    std::vector<circuit::NodeId> output_nodes);

  /// Port node set (original netlist node ids, ordered).
  const std::vector<circuit::NodeId>& ports() const { return ports_; }

  /// Compute the first `count` composite moments symbolically.  `pool`
  /// (optional) parallelizes the numeric-partition extraction; the result
  /// is bit-identical whatever the thread count.
  SymbolicMoments compute(std::size_t count, sweep::ThreadPool* pool = nullptr) const;
  SymbolicMoments compute(std::size_t count, const ExtractOptions& opts) const;

  /// Compute moments for every output at once (shared adjugate work).
  MultiSymbolicMoments compute_all(std::size_t count,
                                   sweep::ThreadPool* pool = nullptr) const;
  MultiSymbolicMoments compute_all(std::size_t count, const ExtractOptions& opts) const;

  /// Numeric-partition admittance moment blocks Y_0..Y_{count-1}
  /// (port_count x port_count, row-major), exposed for tests and the
  /// partitioning ablation bench.  Computed cell by cell (cells.hpp);
  /// with ExtractOptions::block_dir set, clean cells reload their cached
  /// blocks and only dirty cells are re-extracted.
  std::vector<std::vector<double>> numeric_port_moments(
      std::size_t count, sweep::ThreadPool* pool = nullptr) const;
  std::vector<std::vector<double>> numeric_port_moments(
      std::size_t count, const ExtractOptions& opts) const;

 private:
  struct GlobalLayout {
    std::size_t num_ports = 0;
    std::size_t input_aux = SIZE_MAX;                 ///< aux row of a V input
    std::vector<std::size_t> inductor_aux;            ///< per symbolic L, aux row
    std::size_t dim = 0;
  };

  std::size_t port_index(circuit::NodeId node) const;
  /// True for ground and for nodes pinned to ground by an ideal V source
  /// (supply rails): they are AC ground in the small-signal analysis and
  /// must not become ports (a port source in parallel with the rail source
  /// would make the system singular).
  bool ac_grounded(circuit::NodeId node) const;

  const circuit::Netlist* netlist_;
  std::vector<SymbolSpec> symbols_;
  std::size_t input_element_ = 0;
  std::vector<circuit::NodeId> output_nodes_;
  std::vector<circuit::NodeId> ports_;  // sorted original node ids
  std::vector<bool> rail_nodes_;        // indexed by NodeId
};

}  // namespace awe::part
