#include "testing/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "awe/moments.hpp"
#include "awe/sensitivity.hpp"
#include "core/awesymbolic.hpp"
#include "engine/sweep.hpp"
#include "exact/exact_symbolic.hpp"

namespace awe::testing {
namespace {

/// Magnitude beyond which a moment set is treated as numerically
/// meaningless (the DC matrix is singular to working precision).
constexpr double kNearSingular = 1e100;

struct Path {
  bool ok = false;
  std::vector<double> m;
  std::string error;
  /// Why the path failed, when it did (kNone while ok).
  health::FailClass fail = health::FailClass::kNone;
};

Path run_path(const std::function<std::vector<double>()>& fn) {
  Path p;
  try {
    p.m = fn();
    p.ok = true;
    for (const double v : p.m)
      if (!std::isfinite(v)) {
        p.ok = false;
        p.error = "non-finite moments";
        p.fail = health::FailClass::kNonFiniteEval;
        p.m.clear();
        break;
      }
  } catch (const health::FailError& e) {
    p.error = e.what();
    p.fail = e.fail_class();
  } catch (const std::exception& e) {
    p.error = e.what();
    p.fail = health::FailClass::kUnknown;
  }
  return p;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Per-moment cancellation factors c_k = scale_k / |m_k| with
/// scale_k = |m_0| * tau^k, tau the dominant time constant inferred from
/// the reference moments.  c_k == 1 when no scale can be inferred.
std::vector<double> cancellation_factors(const std::vector<double>& ref) {
  std::vector<double> c(ref.size(), 1.0);
  if (ref.empty() || ref[0] == 0.0) return c;
  const double m0 = std::abs(ref[0]);
  double tau = 0.0;
  for (std::size_t k = 1; k < ref.size(); ++k)
    if (ref[k] != 0.0)
      tau = std::max(tau, std::pow(std::abs(ref[k]) / m0, 1.0 / static_cast<double>(k)));
  if (tau == 0.0) return c;
  double scale = m0;
  for (std::size_t k = 0; k < ref.size(); ++k) {
    if (ref[k] != 0.0) c[k] = std::max(1.0, scale / std::abs(ref[k]));
    scale *= tau;
  }
  return c;
}

/// Conservative upper bounds on the transfer magnitude and dominant time
/// constant, derived from the deck's element values.  Moments below
/// zero_tol of the natural magnitude m0_ub * tau_ub^k are roundoff noise
/// (e.g. the exact path's coefficient cancellation leaving 1e-25 where the
/// true moment is exactly zero) and must be skipped, not compared: no
/// relative tolerance can rescue a comparison against an exact 0.
struct DeckScale {
  double m0_ub = 1.0;   ///< bound on |H| (|Z| for current input)
  double tau_ub = 1.0;  ///< bound on the dominant time constant
};

DeckScale deck_scale(const circuit::Netlist& nl, const std::string& input) {
  using circuit::ElementKind;
  double r_sum = 0.0, r_min = 1e300, c_sum = 0.0, l_sum = 0.0, amp = 1.0;
  std::vector<double> gms, trans;
  bool current_input = false;
  for (const auto& e : nl.elements()) {
    switch (e.kind) {
      case ElementKind::kResistor:
        r_sum += e.value;
        r_min = std::min(r_min, e.value);
        break;
      case ElementKind::kConductance:
        if (e.value > 0.0) {
          r_sum += 1.0 / e.value;
          r_min = std::min(r_min, 1.0 / e.value);
        }
        break;
      case ElementKind::kCapacitor: c_sum += std::abs(e.value); break;
      case ElementKind::kInductor: l_sum += std::abs(e.value); break;
      case ElementKind::kVcvs:
      case ElementKind::kCccs: amp *= std::max(1.0, std::abs(e.value)); break;
      case ElementKind::kVccs: gms.push_back(std::abs(e.value)); break;
      case ElementKind::kCcvs:
        trans.push_back(std::abs(e.value));
        r_sum += std::abs(e.value);  // a transresistance scales like an R
        break;
      case ElementKind::kCurrentSource:
        if (e.name == input) current_input = true;
        break;
      default: break;
    }
  }
  if (r_min > 1e299) r_min = 1.0;
  if (r_sum == 0.0) r_sum = 1.0;
  for (const double gm : gms) amp *= std::max(1.0, gm * r_sum);
  for (const double r : trans) amp *= std::max(1.0, r / r_min);
  amp = std::min(amp, 1e8);

  DeckScale s;
  s.m0_ub = amp * (current_input ? r_sum : 1.0);
  s.tau_ub = 10.0 * (c_sum * r_sum + l_sum / r_min);
  // A purely resistive deck has all higher moments identically zero — any
  // nonzero value there is noise, so the floor must not decay with k.
  if (s.tau_ub == 0.0) s.tau_ub = 1.0;
  return s;
}

}  // namespace

const char* to_string(OracleStatus s) {
  switch (s) {
    case OracleStatus::kAgree: return "agree";
    case OracleStatus::kMismatch: return "mismatch";
    case OracleStatus::kIllConditioned: return "ill-conditioned";
    case OracleStatus::kSingular: return "singular";
  }
  return "?";
}

OracleResult run_oracles(const circuit::ParsedDeck& deck, const OracleOptions& opts) {
  if (deck.symbol_elements.empty() || deck.input_source.empty() ||
      deck.output_node.empty())
    throw std::invalid_argument(
        "run_oracles: deck needs .symbol, .input and .output directives");
  const auto out_node = deck.netlist.find_node(deck.output_node);
  if (!out_node)
    throw std::invalid_argument("run_oracles: unknown output node '" + deck.output_node +
                                "'");

  const std::size_t nm = 2 * opts.order;
  OracleResult res;

  // Symbol element values in deck directive order (the order every oracle
  // below is handed the symbol list in).
  std::vector<double> values;
  for (const auto& name : deck.symbol_elements) {
    const auto idx = deck.netlist.find_element(name);
    if (!idx)
      throw std::invalid_argument("run_oracles: unknown .symbol element '" + name + "'");
    values.push_back(deck.netlist.elements()[*idx].value);
  }

  // -- path 2: numeric AWE (MNA recursion) ------------------------------
  const Path awe_path = run_path([&] {
    engine::MomentGenerator gen(deck.netlist);
    return gen.transfer_moments(deck.input_source, *out_node, nm);
  });

  // -- path 1: exact symbolic -------------------------------------------
  const Path exact_path = run_path([&] {
    const auto xf = exact::exact_symbolic_transfer(deck.netlist, deck.symbol_elements,
                                                   deck.input_source, *out_node);
    return xf.moments(values, nm);
  });

  // -- paths 3..5 (and 7) share the compiled model ----------------------
  Path strict_path, fast_path, sweep_path;
  Path native_strict_path, native_fast_path;
  bool native_attached = false;
  std::string build_error;
  try {
    // With a cache_dir the model goes build -> store -> load -> use, and a
    // second save must reproduce the first byte stream; the loaded model
    // then drives strict/fast/sweep, so any serializer defect shows up as
    // an oracle mismatch (the "sixth oracle").
    core::BuildOptions build_opts;
    build_opts.cache_dir = opts.cache_dir;
    auto model = core::CompiledModel::build(deck.netlist, deck.symbol_elements,
                                            deck.input_source, *out_node,
                                            {.order = opts.order}, build_opts);
    if (!opts.cache_dir.empty()) {
      std::ostringstream first, second;
      model.save(first);
      std::istringstream in(first.str());
      model = core::CompiledModel::load(in);
      model.save(second);
      if (first.str() != second.str())
        throw std::runtime_error(
            "model serializer not byte-stable (save->load->save differs)");
    }
    // The partitioner preserves the caller's symbol order; re-map by name
    // anyway so a future reordering cannot silently skew the comparison.
    std::vector<double> model_values(values.size());
    const auto names = model.symbol_names();
    for (std::size_t i = 0; i < names.size(); ++i)
      model_values[i] = deck.netlist.elements()[*deck.netlist.find_element(names[i])].value;

    strict_path = run_path([&] { return model.moments_at(model_values); });

    fast_path = run_path([&] {
      auto ws = model.make_batch_workspace(1);
      std::vector<double> out(nm, 0.0);
      unsigned char ok = 1;
      model.moments_batch(model_values, 1, 1, ws, out, 1, {&ok, 1},
                          core::EvalMode::kFast);
      if (!ok) throw std::runtime_error("fast lane rejected the point");
      return out;
    });

    sweep_path = run_path([&] {
      sweep::SweepOptions sopts;
      sopts.threads = 1;
      sopts.batch_width = 8;
      const auto sr = sweep::run_sweep(model, model_values, 1, sopts);
      if (sr.ok_count != 1) throw std::runtime_error("sweep rejected the point");
      std::vector<double> out(nm);
      for (std::size_t k = 0; k < nm; ++k) out[k] = sr.moment(k, 0);
      return out;
    });

    // -- path 7: native AOT backend (emit C -> cc -> dlopen) ------------
    if (opts.native) {
      const health::Status why = model.attach_native(opts.cache_dir);
      native_attached = model.has_native();
      if (native_attached) {
        const auto native_lane = [&](core::EvalMode mode) {
          auto ws = model.make_batch_workspace(1);
          std::vector<double> out(nm, 0.0);
          unsigned char ok = 1;
          model.moments_batch(model_values, 1, 1, ws, out, 1, {&ok, 1}, mode,
                              core::EvalBackend::kNative);
          if (!ok) throw std::runtime_error("native lane rejected the point");
          return out;
        };
        native_strict_path = run_path([&] { return native_lane(core::EvalMode::kStrict); });
        native_fast_path = run_path([&] { return native_lane(core::EvalMode::kFast); });
      } else {
        // No compiler / compile failure: degrade, don't fail.  The skip is
        // visible in native_ran + the health report's kNativeBackend count.
        res.native_error = why.message;
        res.health.record_failure(why.fail_class);
      }
    }

    try {
      const auto rom = model.evaluate(model_values);
      res.pade_ok = rom.order() >= 1;
    } catch (const std::exception&) {
      res.pade_ok = false;  // Padé instability: classified, never a failure
    }
  } catch (const std::exception& e) {
    build_error = e.what();
    strict_path.error = fast_path.error = sweep_path.error = build_error;
    const health::FailClass fc = health::fail_class_of(e);
    strict_path.fail = fast_path.fail = sweep_path.fail = fc;
  }

  // -- fault injection (tests the detector, not the product) ------------
  if (opts.fault == FaultInjection::kPerturbFastMoment0 && fast_path.ok &&
      !fast_path.m.empty())
    fast_path.m[0] *= 1.0 + 0x1.0p-10;

  res.exact = exact_path.m;
  res.awe = awe_path.m;
  res.strict_c = strict_path.m;
  res.fast = fast_path.m;
  res.sweep = sweep_path.m;
  res.native_strict = native_strict_path.m;
  res.native_fast = native_fast_path.m;
  res.native_ran = native_attached;
  res.exact_error = exact_path.error;
  res.awe_error = awe_path.error;
  res.compiled_error = strict_path.error;
  for (const Path* p : std::initializer_list<const Path*>{
           &exact_path, &awe_path, &strict_path, &fast_path, &sweep_path})
    if (!p->ok) res.health.record_failure(p->fail);
  if (native_attached)
    for (const Path* p :
         std::initializer_list<const Path*>{&native_strict_path, &native_fast_path})
      if (!p->ok) res.health.record_failure(p->fail);

  // -- classification ----------------------------------------------------
  if (!awe_path.ok && !exact_path.ok && !strict_path.ok) {
    res.status = OracleStatus::kSingular;
    res.detail = "all paths rejected the deck: " + awe_path.error;
    return res;
  }

  const Path& hub = awe_path.ok ? awe_path : (strict_path.ok ? strict_path : exact_path);
  double peak = 0.0;
  for (const double v : hub.m) peak = std::max(peak, std::abs(v));
  if (peak > kNearSingular) {
    res.status = OracleStatus::kIllConditioned;
    res.detail = "near-singular Y0: |m| peaks at " + fmt(peak);
    return res;
  }

  const auto cancel = cancellation_factors(hub.m);
  for (const double c : cancel) res.worst_cancellation = std::max(res.worst_cancellation, c);

  // Absolute noise floor per moment order (see DeckScale above).
  const DeckScale scale = deck_scale(deck.netlist, deck.input_source);
  std::vector<double> floor(nm);
  double mag = opts.zero_tol * scale.m0_ub;
  for (std::size_t k = 0; k < nm; ++k) {
    floor[k] = mag;
    mag *= scale.tau_ub;
  }

  bool ill = false;
  std::string ill_detail;
  // One path failing while another succeeds is itself a differential
  // finding (unless everything points at ill-conditioning, handled above).
  auto require_ok = [&](const Path& p, const char* label) {
    if (!p.ok && res.status == OracleStatus::kAgree) {
      res.status = OracleStatus::kMismatch;
      // The FailClass code is part of the signature: the shrinker must not
      // turn e.g. a hankel-ill-conditioned failure into a singular-y0 one.
      res.mismatch_kind =
          std::string(label) + " failed [" + health::code(p.fail) + "]";
      res.detail = std::string(label) + " failed while " +
                   (awe_path.ok ? "awe" : (strict_path.ok ? "strict" : "exact")) +
                   " succeeded: " + p.error;
    }
  };

  auto compare = [&](const Path& a, const Path& b, const char* la, const char* lb,
                     double tol, double tol_cap) {
    if (!a.ok || !b.ok || res.status != OracleStatus::kAgree) return;
    for (std::size_t k = 0; k < nm && k < a.m.size() && k < b.m.size(); ++k) {
      const double denom = std::max(std::abs(a.m[k]), std::abs(b.m[k]));
      if (denom == 0.0) continue;
      if (denom <= floor[k]) {
        ++res.moments_skipped;  // below the deck's roundoff noise floor
        continue;
      }
      const double c = k < cancel.size() ? cancel[k] : 1.0;
      if (c > opts.cancel_skip) {
        ++res.moments_skipped;
        continue;
      }
      ++res.moments_compared;
      const double err = std::abs(a.m[k] - b.m[k]) / denom;
      res.max_rel_err = std::max(res.max_rel_err, err);
      const double tol_eff = tol * std::clamp(c, 1.0, tol_cap);
      if (err <= tol_eff) continue;
      std::ostringstream why;
      why << la << " vs " << lb << " at moment " << k << ": " << fmt(a.m[k]) << " vs "
          << fmt(b.m[k]) << " (rel err " << fmt(err) << ", cancellation " << fmt(c)
          << ")";
      if (c > opts.ill_limit) {
        ill = true;
        if (ill_detail.empty()) ill_detail = why.str();
      } else {
        res.status = OracleStatus::kMismatch;
        res.mismatch_kind = std::string(la) + " vs " + lb;
        res.detail = why.str();
        return;
      }
    }
  };

  compare(exact_path, awe_path, "exact", "awe", opts.cross_tol, opts.ill_limit);
  compare(awe_path, strict_path, "awe", "strict", opts.cross_tol, opts.ill_limit);
  compare(strict_path, fast_path, "strict", "fast", opts.fast_tol, 1e3);
  if (native_attached) {
    // Seventh oracle: backend identity is part of the mismatch signature so
    // the shrinker cannot morph a codegen bug into an interpreter one.
    compare(strict_path, native_strict_path, "strict", "native-strict", opts.fast_tol, 1e3);
    compare(strict_path, native_fast_path, "strict", "native-fast", opts.fast_tol, 1e3);
  }

  // Sweep strict mode guarantees bit-identical results to the scalar
  // interpreter — compared exactly, no tolerance.
  if (strict_path.ok && sweep_path.ok && res.status == OracleStatus::kAgree) {
    for (std::size_t k = 0; k < nm; ++k) {
      if (strict_path.m[k] == sweep_path.m[k]) continue;
      res.status = OracleStatus::kMismatch;
      res.mismatch_kind = "sweep not bit-identical";
      res.detail = "sweep strict mode is not bit-identical to scalar at moment " +
                   std::to_string(k) + ": " + fmt(strict_path.m[k]) + " vs " +
                   fmt(sweep_path.m[k]);
      return res;
    }
  }

  require_ok(exact_path, "exact");
  require_ok(awe_path, "awe");
  require_ok(strict_path, "strict");
  require_ok(fast_path, "fast");
  require_ok(sweep_path, "sweep");
  if (native_attached) {
    require_ok(native_strict_path, "native-strict");
    require_ok(native_fast_path, "native-fast");
  }

  // -- path 8: reverse-mode gradients (only on cleanly agreeing cases) ---
  if (opts.gradients && res.status == OracleStatus::kAgree && !ill &&
      strict_path.ok) {
    try {
      const auto gmodel = core::CompiledModel::build(
          deck.netlist, deck.symbol_elements, deck.input_source, *out_node,
          {.order = opts.order, .with_gradients = true});
      const auto names = gmodel.symbol_names();
      std::vector<double> gvalues(names.size());
      for (std::size_t i = 0; i < names.size(); ++i)
        gvalues[i] =
            deck.netlist.elements()[*deck.netlist.find_element(names[i])].value;

      const auto mg = gmodel.moments_and_gradients(gvalues);
      // The gradient stream embeds the primal outputs and computes them in
      // the same strict instruction order as the forward program, so the
      // moments of the gradient run must be BIT-identical to the strict
      // path — no tolerance (DESIGN.md §14).
      for (std::size_t k = 0; k < nm; ++k) {
        if (mg.moments[k] == strict_path.m[k]) continue;
        res.status = OracleStatus::kMismatch;
        res.mismatch_kind = "gradient primal not bit-identical";
        res.detail = "gradient program's embedded moment " + std::to_string(k) +
                     " differs from forward strict: " + fmt(mg.moments[k]) +
                     " vs " + fmt(strict_path.m[k]);
        return res;
      }

      engine::MomentGenerator gen(deck.netlist);
      const auto ms =
          engine::moment_sensitivities(gen, deck.input_source, *out_node, nm);
      for (std::size_t i = 0;
           i < names.size() && res.status == OracleStatus::kAgree; ++i) {
        const std::size_t eidx = *deck.netlist.find_element(names[i]);
        if (!ms.differentiable[eidx]) {
          // Skip, never fail: the adjoint declares this element's value
          // non-differentiable (e.g. a controlled-source gain outside the
          // supported set), so there is no second mechanism to check the
          // reverse-mode number against.
          res.gradient_skips += nm;
          continue;
        }
        // Central FD of the forward strict path, relative step.
        const double h = 1e-6 * std::abs(gvalues[i]);
        auto hi = gvalues, lo = gvalues;
        hi[i] += h;
        lo[i] -= h;
        const auto mh = gmodel.moments_at(hi);
        const auto mlo = gmodel.moments_at(lo);
        for (std::size_t k = 0; k < nm; ++k) {
          // Gradient noise floor: the moment floor divided by the value,
          // i.e. the same scale the gradient inherits by dimensions.
          const double gfloor = floor[k] / std::max(std::abs(gvalues[i]), 1e-300);
          const double c = k < cancel.size() ? cancel[k] : 1.0;
          const double rev = mg.dm[k][i];
          const double adj = ms.dm[k][eidx];
          const double fd = (mh[k] - mlo[k]) / (2.0 * h);
          const double denom_a = std::max(std::abs(rev), std::abs(adj));
          if (denom_a <= gfloor || c > opts.cancel_skip) {
            ++res.gradient_skips;
            continue;
          }
          ++res.gradient_checks;
          // Reverse vs adjoint: two machine-precision machineries, held to
          // the cross-path tolerance widened by the moment's cancellation.
          const double err_a = std::abs(rev - adj) / denom_a;
          if (err_a > opts.cross_tol * std::clamp(c, 1.0, opts.ill_limit)) {
            res.status = OracleStatus::kMismatch;
            res.mismatch_kind = "gradient reverse vs adjoint";
            std::ostringstream why;
            why << "reverse-mode vs adjoint d(m_" << k << ")/d(" << names[i]
                << "): " << fmt(rev) << " vs " << fmt(adj) << " (rel err "
                << fmt(err_a) << ", cancellation " << fmt(c) << ")";
            res.detail = why.str();
            break;
          }
          // Reverse vs FD: truncation + subtraction noise dominate, so the
          // tolerance is loose and floor-padded — FD is the independent
          // sanity check, not the precision reference.
          const double err_f =
              std::abs(rev - fd) / std::max(denom_a, std::abs(fd));
          if (err_f > 1e-3 * std::clamp(c, 1.0, opts.ill_limit) &&
              std::abs(rev - fd) > 1e3 * gfloor) {
            res.status = OracleStatus::kMismatch;
            res.mismatch_kind = "gradient reverse vs fd";
            std::ostringstream why;
            why << "reverse-mode vs central FD d(m_" << k << ")/d(" << names[i]
                << "): " << fmt(rev) << " vs " << fmt(fd) << " (rel err "
                << fmt(err_f) << ", cancellation " << fmt(c) << ")";
            res.detail = why.str();
            break;
          }
        }
      }
      res.gradients_ran = true;
    } catch (const std::exception& e) {
      // Build/eval failure of the gradient rebuild on a deck every other
      // path accepted: skip-not-fail, but leave the reason visible.
      res.gradients_error = e.what();
      res.health.record_failure(health::fail_class_of(e));
    }
  }

  if (res.status == OracleStatus::kAgree && ill) {
    res.status = OracleStatus::kIllConditioned;
    res.detail = ill_detail;
  }
  return res;
}

}  // namespace awe::testing
