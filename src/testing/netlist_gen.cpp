#include "testing/netlist_gen.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "circuit/mna.hpp"
#include "testing/wellposed.hpp"

namespace awe::testing {
namespace {

/// splitmix64 — tiny, portable, and identical on every platform.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Deterministic RNG with explicitly-defined draw semantics (the standard
/// distributions are implementation-defined, which would make committed
/// corpus decks unreproducible across toolchains).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ^ 0xD1B54A32D192ED03ull) {
    // Warm up so low-entropy seeds (0, 1, 2, ...) decorrelate.
    splitmix64(state_);
    splitmix64(state_);
  }
  std::uint64_t bits() { return splitmix64(state_); }
  /// Uniform in [0, n).
  std::size_t index(std::size_t n) { return static_cast<std::size_t>(bits() % n); }
  /// Uniform in [0, 1).
  double real() { return static_cast<double>(bits() >> 11) * 0x1.0p-53; }
  bool coin(double p) { return real() < p; }
  /// Log-uniform in [lo, hi] — element values spread over decades.
  double log_uniform(double lo, double hi) {
    return std::exp(std::log(lo) + (std::log(hi) - std::log(lo)) * real());
  }

 private:
  std::uint64_t state_;
};

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

class DeckGen {
 public:
  DeckGen(const GenOptions& opts) : opts_(opts), rng_(opts.seed) {
    opts_.max_mna_dim = std::min<std::size_t>(opts_.max_mna_dim, 16);
    // Room for at least one node, the input's aux current and one spare.
    opts_.max_mna_dim = std::max<std::size_t>(opts_.max_mna_dim, 3);
    if (opts_.max_spine_nodes < opts_.min_spine_nodes)
      opts_.max_spine_nodes = opts_.min_spine_nodes;
    if (opts_.min_spine_nodes < 1) opts_.min_spine_nodes = 1;
  }

  GeneratedDeck run() {
    cards_ << "* awe_fuzz generated deck seed=" << opts_.seed << '\n';
    maybe_define_subckt();
    build_spine();
    add_input();
    decorate();
    instantiate_subckts();
    choose_output_and_symbols();
    cards_ << ".end\n";

    GeneratedDeck out;
    out.seed = opts_.seed;
    out.text = cards_.str();
    out.parsed = circuit::parse_deck_string(out.text);
    check_invariants(out);
    return out;
  }

 private:
  std::size_t dim() const { return nodes_.size() + extra_nodes_ + aux_; }
  bool fits(std::size_t extra) const { return dim() + extra <= opts_.max_mna_dim; }

  const std::string& any_node() { return nodes_[rng_.index(nodes_.size())]; }
  /// A node or ground, never equal to `not_this`.
  std::string other_node(const std::string& not_this) {
    for (int tries = 0; tries < 8; ++tries) {
      std::string cand = rng_.coin(0.3) ? "0" : any_node();
      if (cand != not_this) return cand;
    }
    return "0";
  }

  std::string fresh(const char* stem) {
    return std::string(stem) + std::to_string(uid_++);
  }

  void maybe_define_subckt() {
    use_subckt_ = opts_.allow_subckt && rng_.coin(0.35);
    if (!use_subckt_) return;
    // RC-pi two-port: one internal node per instance, no aux unknowns.
    cards_ << ".subckt rcpi a b\n"
           << "rs1 a m " << fmt(rng_.log_uniform(50.0, 5e3)) << '\n'
           << "rs2 m b " << fmt(rng_.log_uniform(50.0, 5e3)) << '\n'
           << "cs1 m 0 " << fmt(rng_.log_uniform(1e-13, 1e-9)) << '\n'
           << ".ends\n";
  }

  void build_spine() {
    const std::size_t span = opts_.max_spine_nodes - opts_.min_spine_nodes + 1;
    const std::size_t n = opts_.min_spine_nodes + rng_.index(span);
    // fits(2): keep one dimension spare for the ballast branch below.
    for (std::size_t i = 0; i < n && fits(2); ++i) {
      const std::string node = "n" + std::to_string(i + 1);
      const std::string parent =
          (i == 0 || rng_.coin(0.3)) ? "0" : nodes_[rng_.index(nodes_.size())];
      nodes_.push_back(node);
      const std::string r = fresh("rsp");
      cards_ << r << ' ' << node << ' ' << parent << ' '
             << fmt(rng_.log_uniform(10.0, 1e5)) << '\n';
      symbol_pool_.push_back(r);
    }
    // Ballast: a two-resistor chain to a fresh node.  The far resistor is
    // always extractable as a port — removing it leaves the node connected
    // through the near one, and a resistor-only node pair can never be
    // DC-shorted by an L/V/E/H path — so every deck has at least one
    // admissible symbol even when the spanning tree itself has none (a
    // pure spine with a V input shorts its only grounded pair).
    ballast_node_ = fresh("nb");
    ballast_ = fresh("rb");
    nodes_.push_back(ballast_node_);
    cards_ << fresh("rb") << ' ' << nodes_.front() << ' ' << ballast_node_ << ' '
           << fmt(rng_.log_uniform(10.0, 1e5)) << '\n'
           << ballast_ << ' ' << ballast_node_ << " 0 "
           << fmt(rng_.log_uniform(10.0, 1e5)) << '\n';
    symbol_pool_.push_back(ballast_);
  }

  void add_input() {
    // A V input costs one aux current; fall back to an I input when the
    // budget is tight.
    voltage_input_ = fits(1) && rng_.coin(0.65);
    input_name_ = voltage_input_ ? "vin" : "iin";
    cards_ << input_name_ << ' ' << nodes_.front() << " 0 1\n";
    if (voltage_input_) ++aux_;
  }

  void decorate() {
    const std::size_t n = rng_.index(opts_.max_decorations + 1);
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng_.index(9)) {
        case 0:
        case 1: add_capacitor(); break;
        case 2: add_extra_resistor(); break;
        case 3: add_series_rl(); break;
        case 4: add_vccs(); break;
        case 5: add_vcvs(); break;
        case 6: add_cccs(); break;
        case 7: add_mutual(); break;
        case 8: add_ccvs(); break;
      }
    }
  }

  void add_capacitor() {
    const std::string a = any_node();
    const std::string b = rng_.coin(0.6) ? "0" : other_node(a);
    const std::string c = fresh("cd");
    cards_ << c << ' ' << a << ' ' << b << ' ' << fmt(rng_.log_uniform(1e-13, 1e-8))
           << '\n';
    symbol_pool_.push_back(c);
  }

  void add_extra_resistor() {
    const std::string a = any_node();
    const std::string b = other_node(a);
    const std::string r = fresh("rx");
    cards_ << r << ' ' << a << ' ' << b << ' ' << fmt(rng_.log_uniform(10.0, 1e5))
           << '\n';
    symbol_pool_.push_back(r);
  }

  void add_series_rl() {
    // R from an existing node to a FRESH middle node, L onward: the
    // inductor's voltage-defined branch can never close a loop, and the
    // middle node keeps a resistive DC path.
    if (!opts_.allow_inductors || !fits(2)) return;
    const std::string a = any_node();
    const std::string b = other_node(a);
    const std::string mid = fresh("m");
    const std::string r = fresh("rl");
    const std::string l = fresh("ll");
    nodes_.push_back(mid);
    ++aux_;
    cards_ << r << ' ' << a << ' ' << mid << ' ' << fmt(rng_.log_uniform(10.0, 2e3))
           << '\n'
           << l << ' ' << mid << ' ' << b << ' ' << fmt(rng_.log_uniform(1e-9, 1e-5))
           << '\n';
    symbol_pool_.push_back(r);
    symbol_pool_.push_back(l);
    free_inductors_.push_back(l);
  }

  void add_vccs() {
    if (!opts_.allow_controlled) return;
    const std::string a = any_node();
    const std::string b = other_node(a);
    const std::string cp = any_node();
    const std::string cn = other_node(cp);
    const std::string g = fresh("gd");
    cards_ << g << ' ' << a << ' ' << b << ' ' << cp << ' ' << cn << ' '
           << fmt(rng_.log_uniform(1e-5, 1e-2)) << '\n';
    symbol_pool_.push_back(g);
  }

  void add_vcvs() {
    if (!opts_.allow_controlled || !fits(2)) return;
    const std::string out = fresh("ne");
    const std::string back = any_node();
    const std::string cp = any_node();
    const std::string cn = other_node(cp);
    nodes_.push_back(out);
    ++aux_;
    cards_ << fresh("ed") << ' ' << out << ' ' << back << ' ' << cp << ' ' << cn << ' '
           << fmt(rng_.log_uniform(0.1, 10.0)) << '\n';
  }

  /// F/H control currents flow through a dedicated 0 V sense source — never
  /// through the input source, which the compiled path removes as the
  /// excitation port (leaving a dangling control reference).  The sense
  /// branch is R from an existing node to a fresh node, then the 0 V source
  /// onward to a second existing non-ground node: no rail, no V loop, and
  /// the fresh node keeps a DC path through the source itself.
  bool ensure_sense_source() {
    if (!sense_source_.empty()) return true;
    if (nodes_.size() < 2 || !fits(2)) return false;
    const std::string a = any_node();
    std::string b;
    for (int tries = 0; tries < 8 && b.empty(); ++tries) {
      const std::string& cand = any_node();
      if (cand != a) b = cand;
    }
    if (b.empty()) return false;
    const std::string mid = fresh("ms");
    const std::string r = fresh("rsn");
    sense_source_ = fresh("vsn");
    nodes_.push_back(mid);
    ++aux_;
    cards_ << r << ' ' << a << ' ' << mid << ' ' << fmt(rng_.log_uniform(50.0, 5e3))
           << '\n'
           << sense_source_ << ' ' << mid << ' ' << b << " 0\n";
    symbol_pool_.push_back(r);
    return true;
  }

  void add_cccs() {
    if (!opts_.allow_controlled) return;
    if (!ensure_sense_source()) return;
    const std::string a = any_node();
    const std::string b = other_node(a);
    cards_ << fresh("fd") << ' ' << a << ' ' << b << ' ' << sense_source_ << ' '
           << fmt(rng_.log_uniform(0.05, 2.0)) << '\n';
  }

  void add_ccvs() {
    if (!opts_.allow_controlled) return;
    if (!fits(sense_source_.empty() ? 4 : 2)) return;
    if (!ensure_sense_source()) return;
    const std::string out = fresh("nh");
    const std::string back = any_node();
    nodes_.push_back(out);
    ++aux_;
    cards_ << fresh("hd") << ' ' << out << ' ' << back << ' ' << sense_source_ << ' '
           << fmt(rng_.log_uniform(1.0, 1e3)) << '\n';
  }

  void add_mutual() {
    if (!opts_.allow_mutual || free_inductors_.size() < 2) return;
    const std::size_t i = rng_.index(free_inductors_.size());
    std::size_t j = rng_.index(free_inductors_.size() - 1);
    if (j >= i) ++j;
    const std::string l1 = free_inductors_[i];
    const std::string l2 = free_inductors_[j];
    cards_ << fresh("kd") << ' ' << l1 << ' ' << l2 << ' '
           << fmt(0.2 + 0.75 * rng_.real()) << '\n';
    // Coupled inductors may not be symbolic; drop them from both pools.
    for (const auto& l : {l1, l2}) {
      std::erase(free_inductors_, l);
      std::erase(symbol_pool_, l);
    }
  }

  void instantiate_subckts() {
    if (!use_subckt_) return;
    const std::size_t n = 1 + (rng_.coin(0.4) ? 1 : 0);
    for (std::size_t i = 0; i < n && fits(1); ++i) {
      const std::string inst = fresh("x");
      const std::string a = any_node();
      const std::string b = other_node(a);
      ++extra_nodes_;  // the instance's internal node "<inst>.m"
      cards_ << inst << ' ' << a << ' ' << b << " rcpi\n";
      output_candidates_.push_back(inst + ".m");
      symbol_pool_.push_back(inst + ".rs1");
      symbol_pool_.push_back(inst + ".cs1");
    }
  }

  void choose_output_and_symbols() {
    for (const auto& n : nodes_) output_candidates_.push_back(n);

    // Fisher–Yates shuffles of the output candidates and the symbol pool,
    // then a greedy admissibility filter: the OUTPUT node is a port too, so
    // it must be co-selected with the symbols (an output sitting on a
    // grounded inductor closes a rigid loop no matter which symbols we
    // pick).  The ballast node/resistor pair is admissible by construction
    // — every rigid branch the generator emits has a then-fresh endpoint,
    // so the ballast node's rigid component is just itself — which makes
    // the final fallback total.
    std::vector<std::string> outs = output_candidates_;
    for (std::size_t i = outs.size(); i > 1; --i)
      std::swap(outs[i - 1], outs[rng_.index(i)]);
    std::vector<std::string> pool = symbol_pool_;
    for (std::size_t i = pool.size(); i > 1; --i)
      std::swap(pool[i - 1], pool[rng_.index(i)]);
    const std::size_t max_k = std::min(opts_.max_symbols, pool.size());
    const std::size_t k = 1 + rng_.index(std::max<std::size_t>(max_k, 1));

    circuit::ParsedDeck flat = circuit::parse_deck_string(cards_.str() + ".end\n");
    flat.input_source = input_name_;
    std::string out;
    std::vector<std::string> chosen;
    for (const auto& out_cand : outs) {
      flat.output_node = out_cand;
      chosen.clear();
      for (const auto& cand : pool) {
        if (chosen.size() >= k) break;
        chosen.push_back(cand);
        if (!symbols_extractable(flat, chosen)) chosen.pop_back();
      }
      if (chosen.empty() && symbols_extractable(flat, {ballast_}))
        chosen.push_back(ballast_);
      if (!chosen.empty()) {
        out = out_cand;
        break;
      }
    }
    if (out.empty()) {
      out = ballast_node_;
      chosen.assign(1, ballast_);
    }

    cards_ << ".symbol";
    for (const auto& s : chosen) cards_ << ' ' << s;
    cards_ << '\n';
    cards_ << ".input " << input_name_ << '\n';
    cards_ << ".output " << out << '\n';
  }

  void check_invariants(GeneratedDeck& out) const {
    const auto problems = out.parsed.netlist.validate();
    if (!problems.empty())
      throw std::logic_error("netlist_gen seed " + std::to_string(opts_.seed) +
                             " produced an ill-posed deck: " + problems.front());
    const circuit::MnaAssembler assembler(out.parsed.netlist);
    out.mna_dim = assembler.layout().dim();
    if (out.mna_dim > opts_.max_mna_dim)
      throw std::logic_error("netlist_gen seed " + std::to_string(opts_.seed) +
                             " busted its MNA budget: dim " +
                             std::to_string(out.mna_dim) + " > " +
                             std::to_string(opts_.max_mna_dim));
    if (out.parsed.symbol_elements.empty() || out.parsed.input_source.empty() ||
        out.parsed.output_node.empty())
      throw std::logic_error("netlist_gen: missing directives");
  }

  GenOptions opts_;
  Rng rng_;
  std::ostringstream cards_;
  std::vector<std::string> nodes_;             ///< attachable non-ground nodes
  std::vector<std::string> output_candidates_; ///< nodes_ + subckt internals
  std::vector<std::string> symbol_pool_;       ///< R/C/L(uncoupled)/VCCS names
  std::vector<std::string> free_inductors_;    ///< not yet mutually coupled
  std::size_t aux_ = 0;
  std::size_t extra_nodes_ = 0;
  std::size_t uid_ = 1;
  bool use_subckt_ = false;
  bool voltage_input_ = false;
  std::string input_name_;
  std::string sense_source_;  ///< shared 0 V control source for F/H cards
  std::string ballast_;       ///< guaranteed-extractable symbol fallback
  std::string ballast_node_;  ///< the ballast chain's middle node
};

}  // namespace

GeneratedDeck generate_deck(const GenOptions& opts) { return DeckGen(opts).run(); }

std::uint64_t case_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t s = seed + 0x632BE59BD9B4E019ull * (index + 1);
  std::uint64_t a = splitmix64(s);
  return a ? a : 1;  // seed 0 is reserved as "unset" in reports
}

}  // namespace awe::testing
