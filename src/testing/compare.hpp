// Structural deck equality for round-trip property tests and corpus
// replay: two parsed decks are identical when they contain the same
// elements (name, kind, terminals BY NODE NAME, control references,
// bit-exact values) and the same .symbol/.input/.output directives.
// Node ids are compared through their names, so two netlists that intern
// nodes in a different order still compare equal.
#pragma once

#include <string>

#include "circuit/parser.hpp"

namespace awe::testing {

/// True when the decks are structurally identical; otherwise false with a
/// human-readable first difference in *why (when non-null).
bool decks_identical(const circuit::ParsedDeck& a, const circuit::ParsedDeck& b,
                     std::string* why = nullptr);

}  // namespace awe::testing
