#include "testing/fuzz.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "testing/shrink.hpp"

namespace awe::testing {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string FuzzSummary::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"count\": " << count << ",\n";
  os << "  \"agree\": " << agree << ",\n";
  os << "  \"mismatch\": " << mismatch << ",\n";
  os << "  \"ill_conditioned\": " << ill_conditioned << ",\n";
  os << "  \"singular\": " << singular << ",\n";
  os << "  \"pade_flagged\": " << pade_flagged << ",\n";
  os << "  \"native_checked\": " << native_checked << ",\n";
  os << "  \"native_skipped\": " << native_skipped << ",\n";
  os << "  \"gradients_checked\": " << gradients_checked << ",\n";
  os << "  \"gradients_skipped\": " << gradients_skipped << ",\n";
  os << "  \"moments_compared\": " << moments_compared << ",\n";
  os << "  \"moments_skipped\": " << moments_skipped << ",\n";
  os << "  \"elements_generated\": " << elements_generated << ",\n";
  os << "  \"max_mna_dim\": " << max_mna_dim << ",\n";
  os << "  \"worst_rel_err\": " << json_double(worst_rel_err) << ",\n";
  os << "  \"worst_seed\": " << worst_seed << ",\n";
  os << "  \"health\": " << health.to_json(2) << ",\n";
  os << "  \"failures\": [";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const auto& f = failures[i];
    os << (i ? "," : "") << "\n    {\n";
    os << "      \"seed\": " << f.seed << ",\n";
    os << "      \"detail\": \"" << json_escape(f.detail) << "\",\n";
    os << "      \"minimized_elements\": " << f.minimized_elements << ",\n";
    os << "      \"deck\": \"" << json_escape(f.deck) << "\",\n";
    os << "      \"minimized\": \"" << json_escape(f.minimized) << "\"\n";
    os << "    }";
  }
  os << (failures.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

OracleResult run_case(std::uint64_t seed, const FuzzOptions& opts) {
  GenOptions gen = opts.gen;
  gen.seed = seed;
  return run_oracles(generate_deck(gen).parsed, opts.oracle);
}

FuzzSummary run_fuzz(const FuzzOptions& opts) {
  FuzzSummary sum;
  sum.seed = opts.seed;
  sum.count = opts.count;
  for (std::size_t i = 0; i < opts.count; ++i) {
    GenOptions gen = opts.gen;
    gen.seed = case_seed(opts.seed, i);
    const GeneratedDeck g = generate_deck(gen);
    sum.elements_generated += g.parsed.netlist.elements().size();
    sum.max_mna_dim = std::max(sum.max_mna_dim, g.mna_dim);

    const OracleResult r = run_oracles(g.parsed, opts.oracle);
    if (opts.on_case) opts.on_case(g, r);
    sum.health.merge(r.health);
    sum.moments_compared += r.moments_compared;
    sum.moments_skipped += r.moments_skipped;
    if (!r.pade_ok) ++sum.pade_flagged;
    if (opts.oracle.native) ++(r.native_ran ? sum.native_checked : sum.native_skipped);
    if (opts.oracle.gradients)
      ++(r.gradients_ran ? sum.gradients_checked : sum.gradients_skipped);
    switch (r.status) {
      case OracleStatus::kAgree:
        ++sum.agree;
        if (r.max_rel_err > sum.worst_rel_err) {
          sum.worst_rel_err = r.max_rel_err;
          sum.worst_seed = gen.seed;
        }
        break;
      case OracleStatus::kIllConditioned: ++sum.ill_conditioned; break;
      case OracleStatus::kSingular: ++sum.singular; break;
      case OracleStatus::kMismatch: {
        ++sum.mismatch;
        FuzzFailure f;
        f.seed = gen.seed;
        f.detail = r.detail;
        f.deck = g.text;
        if (opts.shrink) {
          // Preserve the mismatch signature, not just "some mismatch":
          // deleting elements can otherwise morph e.g. a fused-kernel
          // divergence into an unrelated path-rejection finding.
          const auto shrunk = shrink_deck(g.parsed, [&](const circuit::ParsedDeck& d) {
            const OracleResult rr = run_oracles(d, opts.oracle);
            return rr.status == OracleStatus::kMismatch &&
                   rr.mismatch_kind == r.mismatch_kind;
          });
          f.minimized = shrunk.text;
          f.minimized_elements = shrunk.deck.netlist.elements().size();
        }
        sum.failures.push_back(std::move(f));
        break;
      }
    }
  }
  health::absorb_global_counters(sum.health);
  return sum;
}

}  // namespace awe::testing
