#include "testing/compare.hpp"

#include <sstream>

namespace awe::testing {
namespace {

using circuit::Element;
using circuit::Netlist;

std::string describe(const Netlist& nl, const Element& e) {
  std::ostringstream os;
  os << circuit::to_string(e.kind) << " '" << e.name << "' (" << nl.node_name(e.pos)
     << ", " << nl.node_name(e.neg) << ") value=" << e.value;
  return os.str();
}

bool fail(std::string* why, const std::string& msg) {
  if (why) *why = msg;
  return false;
}

}  // namespace

bool decks_identical(const circuit::ParsedDeck& a, const circuit::ParsedDeck& b,
                     std::string* why) {
  const Netlist& na = a.netlist;
  const Netlist& nb = b.netlist;
  if (na.elements().size() != nb.elements().size())
    return fail(why, "element counts differ: " + std::to_string(na.elements().size()) +
                         " vs " + std::to_string(nb.elements().size()));
  for (std::size_t i = 0; i < na.elements().size(); ++i) {
    const Element& ea = na.elements()[i];
    const Element& eb = nb.elements()[i];
    const bool same = ea.kind == eb.kind && ea.name == eb.name &&
                      na.node_name(ea.pos) == nb.node_name(eb.pos) &&
                      na.node_name(ea.neg) == nb.node_name(eb.neg) &&
                      na.node_name(ea.ctrl_pos) == nb.node_name(eb.ctrl_pos) &&
                      na.node_name(ea.ctrl_neg) == nb.node_name(eb.ctrl_neg) &&
                      ea.ctrl_source == eb.ctrl_source &&
                      ea.ctrl_source2 == eb.ctrl_source2 && ea.value == eb.value;
    if (!same)
      return fail(why, "element " + std::to_string(i) + " differs: " + describe(na, ea) +
                           " vs " + describe(nb, eb));
  }
  if (a.symbol_elements != b.symbol_elements) return fail(why, ".symbol lists differ");
  if (a.input_source != b.input_source) return fail(why, ".input differs");
  if (a.output_node != b.output_node) return fail(why, ".output differs");
  return true;
}

}  // namespace awe::testing
