// Differential fuzzing campaign driver.
//
// Generates `count` decks from a splitmix64 seed stream, runs the
// five-oracle cross-check on each, shrinks every mismatch to a minimal
// reproducing deck, and aggregates deterministic statistics.  The JSON
// report contains no timestamps, pointers or locale-dependent formatting:
// the same (options, binary) always produce byte-identical output, which
// the CI smoke job asserts by running the campaign twice and diffing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "testing/netlist_gen.hpp"
#include "testing/oracles.hpp"

namespace awe::testing {

struct FuzzOptions {
  std::uint64_t seed = 42;
  std::size_t count = 100;
  GenOptions gen;        ///< gen.seed is overwritten per case
  OracleOptions oracle;
  bool shrink = true;    ///< minimize mismatching decks
  /// Observer invoked once per case (corpus emission, progress printing).
  /// Not part of the statistics; leaving it empty changes nothing.
  std::function<void(const GeneratedDeck&, const OracleResult&)> on_case;
};

struct FuzzFailure {
  std::uint64_t seed = 0;          ///< case seed (regenerates the deck)
  std::string detail;              ///< oracle mismatch description
  std::string deck;                ///< original deck text
  std::string minimized;           ///< shrunk deck text ("" when !shrink)
  std::size_t minimized_elements = 0;
};

struct FuzzSummary {
  std::uint64_t seed = 0;  ///< campaign seed the case stream derives from
  std::size_t count = 0;
  std::size_t agree = 0;
  std::size_t mismatch = 0;
  std::size_t ill_conditioned = 0;
  std::size_t singular = 0;
  std::size_t pade_flagged = 0;      ///< Padé instability classifications
  std::size_t native_checked = 0;    ///< cases the native (7th) oracle ran on
  std::size_t native_skipped = 0;    ///< native requested but backend fell back
  std::size_t gradients_checked = 0; ///< cases the gradient (8th) oracle ran on
  std::size_t gradients_skipped = 0; ///< gradients requested but case skipped
  std::size_t moments_compared = 0;
  std::size_t moments_skipped = 0;
  std::size_t elements_generated = 0;
  std::size_t max_mna_dim = 0;
  double worst_rel_err = 0.0;        ///< over agreeing cases
  std::uint64_t worst_seed = 0;
  /// Merged per-class failure accounting over every case's oracle paths,
  /// with the process-global failpoint/cache counters folded in.
  health::HealthReport health;
  std::vector<FuzzFailure> failures;

  /// Deterministic JSON (fixed key order, C locale, %.17g doubles).
  std::string to_json() const;
};

FuzzSummary run_fuzz(const FuzzOptions& opts);

/// Replay one case seed of a campaign (used to reproduce a failure from
/// the JSON report alone).
OracleResult run_case(std::uint64_t seed, const FuzzOptions& opts);

}  // namespace awe::testing
