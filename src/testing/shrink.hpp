// Automatic test-case shrinker.
//
// Given a deck on which some predicate holds (canonically: "the
// multi-oracle runner reports a mismatch"), greedily searches for a
// smaller deck where it still holds:
//   * delete one element (plus anything its removal leaves dangling:
//     CCCS/CCVS losing their control source, K losing an inductor,
//     .symbol directives losing their element);
//   * collapse one two-terminal R/C/L — delete it and merge its nodes;
//   * snap element values to the nearest power of ten.
// Every candidate is rebuilt through the Netlist API and must re-validate
// (connected, well-formed, output off ground, at least one symbol) before
// the predicate is consulted, so the minimized deck is always well-posed.
// The loop runs to a fixpoint; the result round-trips through the writer
// so it can be committed directly to the regression corpus.
#pragma once

#include <functional>
#include <string>

#include "circuit/parser.hpp"

namespace awe::testing {

using ShrinkPredicate = std::function<bool(const circuit::ParsedDeck&)>;

struct ShrinkResult {
  circuit::ParsedDeck deck;  ///< the minimized deck
  std::string text;          ///< writer output of `deck` (parse-ready)
  std::size_t attempts = 0;  ///< candidates tried
  std::size_t accepted = 0;  ///< shrink steps that kept the predicate
};

/// Shrink `deck` while `still_fails` holds.  The input deck itself must
/// satisfy the predicate (std::invalid_argument otherwise).  The predicate
/// is treated as false for candidates on which it throws.
ShrinkResult shrink_deck(const circuit::ParsedDeck& deck,
                         const ShrinkPredicate& still_fails);

}  // namespace awe::testing
