// Structural well-posedness checks shared by the netlist generator and the
// shrinker: a deck is only admissible when the compiled path can extract
// every .symbol element as a port.  The partitioner's port set is the
// non-AC-ground terminal NODES of the symbols (incl. VCCS control pins),
// the input source terminals and the output node; its numeric partition
// drops the symbols, the input and all current sources; and the port
// admittance moments ground every port node through a 0 V source.  That
// grounded-port DC matrix is singular — and the compiled path legitimately
// rejects what the numeric oracle happens to survive — exactly when
//   * a node loses DC conduction to the merged {ground ∪ ports} class
//     (conducting kinds: R, G, L, V, E, H — not C, I, VCCS or CCCS), or
//   * a voltage-defined branch (L, V, E, H) closes a cycle once the port
//     nodes are identified with ground (dependent aux-current columns).
// The generator must never emit such a deck and the shrinker must never
// shrink into one.
#pragma once

#include <string>
#include <vector>

#include "circuit/parser.hpp"

namespace awe::testing {

/// True when every element of `symbols` can be pulled out of the deck as a
/// port simultaneously.  On failure, *why (when non-null) gets a
/// human-readable reason.
bool symbols_extractable(const circuit::ParsedDeck& deck,
                         const std::vector<std::string>& symbols,
                         std::string* why = nullptr);

}  // namespace awe::testing
