// Multi-oracle differential cross-checker.
//
// One deck, five independent evaluation paths for the same 2q transfer
// moments:
//   1. exact  — Cramer's-rule symbolic H(s,e), Maclaurin long division
//   2. awe    — numeric MNA moment recursion (sparse LU per deck)
//   3. strict — compiled interpreter, scalar strict mode
//   4. fast   — compiled interpreter, peephole-fused batch mode (kFast)
//   5. sweep  — the parallel sweep engine, strict mode, one point
//
// Comparison is condition-aware rather than binary: each moment m_k gets a
// cancellation factor c_k = scale_k / |m_k| against its natural magnitude
// scale_k = |m_0| * tau^k (tau the dominant time constant inferred from
// the moment ratios).  Tolerances widen with c_k; moments cancelled below
// the floor are skipped; disagreement on a moment whose c_k exceeds the
// classification limit is reported as kIllConditioned, not kMismatch.
// Genuine Padé instability is likewise classified, never a failure.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/parser.hpp"
#include "health/report.hpp"
#include "health/status.hpp"

namespace awe::testing {

enum class OracleStatus {
  kAgree,           ///< all five paths match under the tolerance policy
  kMismatch,        ///< a genuine disagreement — this is a bug somewhere
  kIllConditioned,  ///< disagreement explained by catastrophic cancellation
  kSingular,        ///< every path rejects the deck (det Y0 == 0 at DC)
};

const char* to_string(OracleStatus s);

/// Deliberate defects for testing the fuzzer's own detection/shrinking
/// machinery (a perturbed fused kernel is the canonical example).
enum class FaultInjection {
  kNone,
  kPerturbFastMoment0,  ///< scale the fast path's m_0 by (1 + 2^-10)
};

struct OracleOptions {
  std::size_t order = 2;        ///< Padé order q; 2q moments are compared
  double cross_tol = 1e-6;      ///< exact/awe/strict cross-path rel tol
  double fast_tol = 1e-9;       ///< fast vs strict (fused-kernel ULP drift)
  double cancel_skip = 1e9;     ///< skip moments cancelled below scale/|m| > this
  double ill_limit = 1e6;       ///< classify (not fail) beyond this c_k
  /// Absolute noise floor: moments smaller than zero_tol times the deck's
  /// natural magnitude bound (m0_ub * tau_ub^k) are skipped — they are
  /// roundoff where the true moment is (near-)zero, and no relative
  /// tolerance survives a comparison against an exact 0.
  double zero_tol = 1e-9;
  FaultInjection fault = FaultInjection::kNone;
  /// When non-empty, the compiled model is built THROUGH the persistent
  /// model cache (core::ModelCache) and then round-tripped save -> load,
  /// with the LOADED instance driving the strict/fast/sweep paths.  The
  /// serializer thereby becomes a sixth implicit oracle: any bug in the
  /// binary format or the cache surfaces as a cross-path mismatch.
  std::string cache_dir;
  /// Run the native AOT backend as a SEVENTH oracle: the compiled model is
  /// emitted as C, compiled to a shared object (under cache_dir when set,
  /// a scratch directory otherwise) and its strict and fast lanes are
  /// cross-checked against the interpreter with the same condition-aware
  /// tolerance policy as strict-vs-fast.  When no C compiler is available
  /// (or compilation fails) the attach falls back to the interpreter —
  /// recorded in the health report as kNativeBackend and the native paths
  /// are SKIPPED, never reported as a mismatch.
  bool native = false;
  /// Run the reverse-mode gradient program as an EIGHTH oracle: the deck is
  /// rebuilt with ModelOptions::with_gradients and every d(m_k)/d(value) is
  /// cross-checked three ways — reverse-mode vs central finite differences
  /// of the strict path, reverse-mode vs the adjoint numeric
  /// moment_sensitivities, and the gradient program's embedded primal
  /// moments vs the forward program BIT-EXACTLY.  Non-differentiable
  /// symbol elements (per the adjoint's `differentiable` mask) and
  /// cancellation-dominated gradients are SKIPPED, never failed; a case
  /// whose classification already isn't kAgree skips the oracle entirely
  /// (OracleResult::gradients_ran stays false).
  bool gradients = false;
};

struct OracleResult {
  OracleStatus status = OracleStatus::kAgree;
  std::string detail;  ///< human-readable reason for non-agree statuses
  /// Stable signature of HOW the paths disagreed ("strict vs fast",
  /// "awe failed [hankel-ill-conditioned]", ...) — the shrinker preserves
  /// this so minimization cannot morph one finding into a structurally
  /// different one.  Path-failure signatures carry the FailClass code so a
  /// shrink cannot swap one failure class for another either.
  std::string mismatch_kind;
  /// Per-class failure accounting over the five paths (DESIGN.md §11).
  health::HealthReport health;
  /// Per-path moments (empty when that path failed) and failure messages.
  std::vector<double> exact, awe, strict_c, fast, sweep;
  std::string exact_error, awe_error, compiled_error;
  /// Seventh-oracle lanes (only with OracleOptions::native); native_ran is
  /// false when the backend fell back to the interpreter (native_error says
  /// why) and the native lanes were skipped.
  std::vector<double> native_strict, native_fast;
  bool native_ran = false;
  std::string native_error;
  /// Eighth-oracle outcome (only with OracleOptions::gradients):
  /// gradients_ran is false when the case was skipped wholesale (non-agree
  /// classification, gradient build failure — gradients_error says why);
  /// gradient_checks counts (symbol, moment) pairs compared and
  /// gradient_skips the non-differentiable / cancellation-dominated pairs.
  bool gradients_ran = false;
  std::string gradients_error;
  std::size_t gradient_checks = 0;
  std::size_t gradient_skips = 0;
  double max_rel_err = 0.0;       ///< worst pairwise rel error over compared moments
  double worst_cancellation = 1.0;///< max c_k observed
  bool pade_ok = true;            ///< classification only, never a failure
  std::size_t moments_compared = 0;
  std::size_t moments_skipped = 0;  ///< cancelled past OracleOptions::cancel_skip
};

/// Run all five oracles on a parsed deck carrying .symbol/.input/.output
/// directives.  Never throws on well-posed decks: failures are encoded in
/// the status.  Throws std::invalid_argument for decks missing directives.
OracleResult run_oracles(const circuit::ParsedDeck& deck, const OracleOptions& opts = {});

}  // namespace awe::testing
