#include "testing/shrink.hpp"

#include <cmath>
#include <optional>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "circuit/writer.hpp"
#include "testing/wellposed.hpp"

namespace awe::testing {
namespace {

using circuit::Element;
using circuit::ElementKind;
using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;
using circuit::ParsedDeck;

bool two_terminal_passive(ElementKind k) {
  return k == ElementKind::kResistor || k == ElementKind::kConductance ||
         k == ElementKind::kCapacitor || k == ElementKind::kInductor;
}

/// Rebuild a deck keeping only elements with keep[i], with nodes remapped
/// through `root` (a union-find-style representative per original NodeId).
/// Anything left dangling by the removals is dropped transitively.
/// Returns nullopt when the candidate is not a well-posed deck.
std::optional<ParsedDeck> rebuild(const ParsedDeck& src, std::vector<bool> keep,
                                  const std::vector<NodeId>& root) {
  const auto& elems = src.netlist.elements();

  // Transitively drop elements whose references died: CCCS/CCVS need their
  // control V source, K needs both inductors.
  bool changed = true;
  auto alive = [&](const std::string& name) {
    const auto idx = src.netlist.find_element(name);
    return idx && keep[*idx];
  };
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < elems.size(); ++i) {
      if (!keep[i]) continue;
      const Element& e = elems[i];
      const bool dangling =
          ((e.kind == ElementKind::kCccs || e.kind == ElementKind::kCcvs) &&
           !alive(e.ctrl_source)) ||
          (e.kind == ElementKind::kMutual &&
           (!alive(e.ctrl_source) || !alive(e.ctrl_source2)));
      if (dangling) {
        keep[i] = false;
        changed = true;
      }
    }
  }

  ParsedDeck out;
  out.title = src.title;
  Netlist& nl = out.netlist;
  const auto node = [&](NodeId n) -> NodeId {
    const NodeId r = root[n];
    return r == kGround ? kGround : nl.node(src.netlist.node_name(r));
  };

  try {
    for (std::size_t i = 0; i < elems.size(); ++i) {
      if (!keep[i]) continue;
      const Element& e = elems[i];
      switch (e.kind) {
        case ElementKind::kResistor:
          nl.add_resistor(e.name, node(e.pos), node(e.neg), e.value);
          break;
        case ElementKind::kConductance:
          nl.add_conductance(e.name, node(e.pos), node(e.neg), e.value);
          break;
        case ElementKind::kCapacitor:
          nl.add_capacitor(e.name, node(e.pos), node(e.neg), e.value);
          break;
        case ElementKind::kInductor:
          nl.add_inductor(e.name, node(e.pos), node(e.neg), e.value);
          break;
        case ElementKind::kVoltageSource:
          nl.add_voltage_source(e.name, node(e.pos), node(e.neg), e.value);
          break;
        case ElementKind::kCurrentSource:
          nl.add_current_source(e.name, node(e.pos), node(e.neg), e.value);
          break;
        case ElementKind::kVccs:
          nl.add_vccs(e.name, node(e.pos), node(e.neg), node(e.ctrl_pos),
                      node(e.ctrl_neg), e.value);
          break;
        case ElementKind::kVcvs:
          nl.add_vcvs(e.name, node(e.pos), node(e.neg), node(e.ctrl_pos),
                      node(e.ctrl_neg), e.value);
          break;
        case ElementKind::kCccs:
          nl.add_cccs(e.name, node(e.pos), node(e.neg), e.ctrl_source, e.value);
          break;
        case ElementKind::kCcvs:
          nl.add_ccvs(e.name, node(e.pos), node(e.neg), e.ctrl_source, e.value);
          break;
        case ElementKind::kMutual:
          nl.add_mutual(e.name, e.ctrl_source, e.ctrl_source2, e.value);
          break;
      }
    }
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // e.g. a collapse shorted a voltage source
  }

  // Directives.  The input source must survive; the output node must not
  // have merged into ground; at least one symbol must survive.
  if (src.input_source.empty() || !nl.find_element(src.input_source))
    return std::nullopt;
  out.input_source = src.input_source;
  const auto out_id = src.netlist.find_node(src.output_node);
  if (!out_id) return std::nullopt;
  const NodeId out_root = root[*out_id];
  if (out_root == kGround || !nl.find_node(src.netlist.node_name(out_root)))
    return std::nullopt;
  out.output_node = src.netlist.node_name(out_root);
  for (const auto& s : src.symbol_elements)
    if (nl.find_element(s)) out.symbol_elements.push_back(s);
  if (out.symbol_elements.empty()) return std::nullopt;

  if (!nl.validate().empty()) return std::nullopt;
  // Same admissibility bar as the generator: the compiled oracle must be
  // able to extract the surviving symbols as ports, or the shrinker would
  // morph a genuine differential finding into a structurally-degenerate
  // deck that merely fails to build.
  if (!symbols_extractable(out, out.symbol_elements)) return std::nullopt;
  return out;
}

std::vector<NodeId> identity_roots(const Netlist& nl) {
  std::vector<NodeId> root(nl.num_nodes() + 1);
  for (NodeId i = 0; i < root.size(); ++i) root[i] = i;
  return root;
}

}  // namespace

ShrinkResult shrink_deck(const ParsedDeck& deck, const ShrinkPredicate& still_fails) {
  auto holds = [&](const ParsedDeck& d) {
    try {
      return still_fails(d);
    } catch (const std::exception&) {
      return false;
    }
  };
  if (!holds(deck))
    throw std::invalid_argument("shrink_deck: predicate does not hold on the input deck");

  ShrinkResult res;
  res.deck = deck;

  const auto input_index = [&](const ParsedDeck& d) {
    return d.netlist.find_element(d.input_source);
  };

  bool improved = true;
  while (improved) {
    improved = false;
    const auto& elems = res.deck.netlist.elements();
    const auto input = input_index(res.deck);

    // Pass 1: plain deletions.
    for (std::size_t i = 0; i < elems.size(); ++i) {
      if (input && i == *input) continue;
      std::vector<bool> keep(elems.size(), true);
      keep[i] = false;
      ++res.attempts;
      auto cand = rebuild(res.deck, std::move(keep), identity_roots(res.deck.netlist));
      if (cand && holds(*cand)) {
        res.deck = std::move(*cand);
        ++res.accepted;
        improved = true;
        break;  // element indices shifted; restart the scan
      }
    }
    if (improved) continue;

    // Pass 2: collapse a two-terminal passive (delete + merge its nodes).
    for (std::size_t i = 0; i < elems.size(); ++i) {
      const Element& e = elems[i];
      if (!two_terminal_passive(e.kind) || (input && i == *input)) continue;
      if (e.pos == e.neg) continue;
      std::vector<bool> keep(elems.size(), true);
      keep[i] = false;
      auto root = identity_roots(res.deck.netlist);
      // Merge toward ground when either side is grounded.
      const NodeId to = e.pos == kGround || e.neg == kGround ? kGround
                        : std::min(e.pos, e.neg);
      const NodeId from = e.pos == to ? e.neg : e.pos;
      for (NodeId n = 0; n < root.size(); ++n)
        if (root[n] == from) root[n] = to;
      ++res.attempts;
      auto cand = rebuild(res.deck, std::move(keep), root);
      if (cand && holds(*cand)) {
        res.deck = std::move(*cand);
        ++res.accepted;
        improved = true;
        break;
      }
    }
  }

  // Pass 3 (cosmetic, once): snap surviving values to powers of ten.
  {
    const auto& elems = res.deck.netlist.elements();
    for (std::size_t i = 0; i < elems.size(); ++i) {
      const double v = elems[i].value;
      if (v == 0.0) continue;
      const double snapped =
          std::copysign(std::pow(10.0, std::round(std::log10(std::abs(v)))), v);
      if (snapped == v) continue;
      ParsedDeck cand = res.deck;
      cand.netlist.set_value(i, snapped);
      ++res.attempts;
      if (holds(cand)) {
        res.deck = std::move(cand);
        ++res.accepted;
      }
    }
  }

  circuit::WriteOptions wo;
  wo.title = " shrunk by awe_fuzz";
  res.text = circuit::deck_to_string(res.deck, wo);
  return res;
}

}  // namespace awe::testing
