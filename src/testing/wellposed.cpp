#include "testing/wellposed.hpp"

#include <numeric>
#include <unordered_set>

#include "circuit/netlist.hpp"

namespace awe::testing {
namespace {

using circuit::Element;
using circuit::ElementKind;
using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;

/// Does a branch of this kind conduct at DC (fix the relative DC potential
/// of its terminals)?  C is open at DC; I/VCCS/CCCS inject current without
/// constraining voltage, so we conservatively do not count them.
bool conducts_dc(ElementKind k) {
  return k == ElementKind::kResistor || k == ElementKind::kConductance ||
         k == ElementKind::kInductor || k == ElementKind::kVoltageSource ||
         k == ElementKind::kVcvs || k == ElementKind::kCcvs;
}

/// Is a branch of this kind voltage-defined at DC (a rigid constraint with
/// an auxiliary branch current)?  Any cycle of such branches — once the
/// grounded port nodes are identified with ground — makes the aux-current
/// columns linearly dependent and the DC MNA matrix singular.
bool rigid_at_dc(ElementKind k) {
  return k == ElementKind::kInductor || k == ElementKind::kVoltageSource ||
         k == ElementKind::kVcvs || k == ElementKind::kCcvs;
}

bool symbolic_kind_supported(ElementKind k) {
  return k == ElementKind::kResistor || k == ElementKind::kConductance ||
         k == ElementKind::kCapacitor || k == ElementKind::kInductor ||
         k == ElementKind::kVccs;
}

class Graph {
 public:
  explicit Graph(std::size_t num_nodes) : adj_(num_nodes + 1) {}
  void edge(NodeId a, NodeId b) {
    if (a == b) return;
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }
  /// Nodes reachable from `start` (as a characteristic vector).
  std::vector<bool> reach(NodeId start) const {
    std::vector<bool> seen(adj_.size(), false);
    std::vector<NodeId> stack{start};
    seen[start] = true;
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (const NodeId m : adj_[n])
        if (!seen[m]) {
          seen[m] = true;
          stack.push_back(m);
        }
    }
    return seen;
  }

 private:
  std::vector<std::vector<NodeId>> adj_;
};

}  // namespace

// Faithful structural model of what MomentPartitioner +
// port_admittance_moments require of a deck:
//
//   1. The port set is the NON-AC-GROUND terminal *nodes* of every symbol
//      (incl. VCCS control pins), the input source terminals, and the
//      output node.  Nodes pinned to ground by a non-input ideal V source
//      are AC-ground rails, never ports.
//   2. The numeric partition drops the symbols, the input source and all
//      current sources; other V sources stay as 0 V shorts.
//   3. Port moments ground every port node through a 0 V source, so the
//      partition's DC matrix is singular iff (a) a node loses DC
//      conduction to the merged {ground ∪ ports} class, or (b) any
//      voltage-defined branch (L/V/E/H) closes a cycle once the port
//      nodes are merged with ground.
bool symbols_extractable(const circuit::ParsedDeck& deck,
                         const std::vector<std::string>& symbols, std::string* why) {
  const Netlist& nl = deck.netlist;
  const auto& elems = nl.elements();
  const auto fail = [&](std::string reason) {
    if (why) *why = std::move(reason);
    return false;
  };

  std::unordered_set<std::size_t> symbol_idx;
  std::unordered_set<std::string> symbol_names;
  for (const auto& name : symbols) {
    const auto idx = nl.find_element(name);
    if (!idx) return fail("symbol '" + name + "' not in the netlist");
    if (!symbolic_kind_supported(elems[*idx].kind))
      return fail("symbol '" + name + "' has an unsupported kind");
    symbol_idx.insert(*idx);
    symbol_names.insert(name);
  }

  if (deck.input_source.empty()) return fail("deck has no .input directive");
  const auto in_idx = nl.find_element(deck.input_source);
  if (!in_idx) return fail("input source '" + deck.input_source + "' missing");
  const Element& in = elems[*in_idx];
  if (in.kind != ElementKind::kVoltageSource && in.kind != ElementKind::kCurrentSource)
    return fail("input '" + deck.input_source + "' is not an independent source");
  if (symbol_idx.count(*in_idx)) return fail("input source cannot be symbolic");
  if (in.pos == in.neg) return fail("input source terminals collapsed onto one node");

  for (const Element& e : elems) {
    // The compiled path removes the input as the excitation port, so no
    // surviving F/H card may reference it as its control branch.
    if ((e.kind == ElementKind::kCccs || e.kind == ElementKind::kCcvs) &&
        e.ctrl_source == deck.input_source)
      return fail("element '" + e.name + "' senses the input source's current");
    // M = k sqrt(L1 L2) is not linear in a symbolic inductance.
    if (e.kind == ElementKind::kMutual &&
        (symbol_names.count(e.ctrl_source) || symbol_names.count(e.ctrl_source2)))
      return fail("element '" + e.name + "' couples a symbolic inductor");
  }

  if (deck.output_node.empty()) return fail("deck has no .output directive");
  const auto out_id = nl.find_node(deck.output_node);
  if (!out_id) return fail("output node '" + deck.output_node + "' missing");
  if (*out_id == kGround) return fail("output node is ground");

  // AC-ground rails: nodes pinned by a non-input ideal V source.
  std::vector<char> rail(nl.num_nodes() + 1, 0);
  for (std::size_t i = 0; i < elems.size(); ++i) {
    if (i == *in_idx || elems[i].kind != ElementKind::kVoltageSource) continue;
    if (elems[i].neg == kGround && elems[i].pos != kGround) rail[elems[i].pos] = 1;
    if (elems[i].pos == kGround && elems[i].neg != kGround) rail[elems[i].neg] = 1;
  }
  const auto ac_gnd = [&](NodeId n) { return n == kGround || rail[n]; };
  if (ac_gnd(*out_id)) return fail("output node is pinned to AC ground by an ideal source");
  if ((in.pos != kGround && rail[in.pos]) || (in.neg != kGround && rail[in.neg]))
    return fail("input source terminal is pinned by another ideal source");

  std::vector<char> is_port(nl.num_nodes() + 1, 0);
  const auto add_port = [&](NodeId n) {
    if (!ac_gnd(n)) is_port[n] = 1;
  };
  for (const std::size_t i : symbol_idx) {
    add_port(elems[i].pos);
    add_port(elems[i].neg);
    if (elems[i].kind == ElementKind::kVccs) {
      add_port(elems[i].ctrl_pos);
      add_port(elems[i].ctrl_neg);
    }
  }
  add_port(in.pos);
  add_port(in.neg);
  add_port(*out_id);

  // Union-find over nodes with every port pre-merged into ground; a rigid
  // branch whose endpoints already share a class closes a singular cycle.
  std::vector<NodeId> uf(nl.num_nodes() + 1);
  std::iota(uf.begin(), uf.end(), NodeId{0});
  const auto find = [&](NodeId n) {
    while (uf[n] != n) n = uf[n] = uf[uf[n]];
    return n;
  };
  for (NodeId n = 1; n <= nl.num_nodes(); ++n)
    if (is_port[n]) uf[find(n)] = find(kGround);

  Graph conduct(nl.num_nodes()), full_conduct(nl.num_nodes());
  for (NodeId n = 1; n <= nl.num_nodes(); ++n)
    if (is_port[n]) conduct.edge(kGround, n);

  // The numeric AWE and exact paths analyze the COMPLETE netlist, where no
  // port grounding exists: the whole deck must conduct to actual ground.
  for (const Element& e : elems)
    if (e.kind != ElementKind::kMutual && conducts_dc(e.kind))
      full_conduct.edge(e.pos, e.neg);
  {
    const auto grounded = full_conduct.reach(kGround);
    for (NodeId n = 1; n <= nl.num_nodes(); ++n)
      if (!grounded[n])
        return fail("node '" + nl.node_name(n) + "' has no DC path to ground");
  }

  for (std::size_t i = 0; i < elems.size(); ++i) {
    if (symbol_idx.count(i) || i == *in_idx) continue;
    const Element& e = elems[i];
    if (e.kind == ElementKind::kMutual || e.kind == ElementKind::kCurrentSource)
      continue;
    if (conducts_dc(e.kind)) conduct.edge(e.pos, e.neg);
    if (rigid_at_dc(e.kind)) {
      const NodeId a = find(e.pos), b = find(e.neg);
      if (a == b)
        return fail("element '" + e.name +
                    "' closes a rigid DC loop through the grounded ports");
      uf[a] = b;
    }
  }

  const auto grounded = conduct.reach(kGround);
  for (NodeId n = 1; n <= nl.num_nodes(); ++n)
    if (!grounded[n])
      return fail("node '" + nl.node_name(n) +
                  "' loses its DC path once the symbols are extracted");
  return true;
}

}  // namespace awe::testing
