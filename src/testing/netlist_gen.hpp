// Seeded random netlist generator for differential fuzzing.
//
// Emits well-posed SPICE decks by construction, never by rejection:
//   * every non-ground node hangs off a resistive spanning tree rooted at
//     ground, so G + s0*C is nonsingular at DC (no C-cut nodes, no
//     floating islands);
//   * inductors, VCVS and CCVS outputs always introduce a fresh node, so
//     the voltage-defined branches (V/L/E/H) can never close a loop;
//   * CCCS/CCVS control currents reference the input voltage source;
//   * mutually coupled inductors are excluded from the symbol pool (the
//     M = k*sqrt(L1 L2) stamp is not linear in a symbolic L);
//   * the MNA dimension (nodes + aux branch currents) is budgeted during
//     generation and capped at <= 16 so the exact Cramer's-rule oracle
//     stays tractable.
//
// Generation is deterministic in the seed: the same (GenOptions, seed)
// always produce byte-identical deck text, on any platform (no
// std::uniform_*_distribution, whose streams are implementation-defined).
#pragma once

#include <cstdint>
#include <string>

#include "circuit/parser.hpp"

namespace awe::testing {

struct GenOptions {
  std::uint64_t seed = 1;
  /// Hard MNA-dimension budget; clamped to the exact oracle's limit of 16.
  std::size_t max_mna_dim = 12;
  std::size_t min_spine_nodes = 2;  ///< resistive spanning-tree nodes
  std::size_t max_spine_nodes = 6;
  std::size_t max_decorations = 8;  ///< extra R/C/L/controlled-source cards
  std::size_t max_symbols = 3;      ///< .symbol count (always >= 1)
  bool allow_inductors = true;
  bool allow_controlled = true;  ///< G/E/F/H cards
  bool allow_mutual = true;      ///< K cards (requires allow_inductors)
  bool allow_subckt = true;      ///< .subckt definition + X instances
};

struct GeneratedDeck {
  std::uint64_t seed = 0;
  std::string text;             ///< the deck source (ends in .end)
  circuit::ParsedDeck parsed;   ///< parse of `text`
  std::size_t mna_dim = 0;      ///< nodes + aux unknowns of the parse
};

/// Generate one deck.  Throws std::logic_error if the generator violates
/// its own well-posedness invariants (a generator bug, not bad luck).
GeneratedDeck generate_deck(const GenOptions& opts);

/// The case seed used for index `i` of a campaign with master seed `seed`
/// (splitmix64 stream, so neighbouring cases are decorrelated).
std::uint64_t case_seed(std::uint64_t seed, std::uint64_t index);

}  // namespace awe::testing
