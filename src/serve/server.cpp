#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "circuit/parser.hpp"
#include "core/model_cache.hpp"
#include "health/failpoints.hpp"
#include "health/status.hpp"

namespace awe::serve {

namespace {

using clock = std::chrono::steady_clock;

std::int64_t now_ns() { return clock::now().time_since_epoch().count(); }

/// Sleep in ticks so a stop flag interrupts promptly.
void interruptible_sleep(std::chrono::milliseconds total, const std::atomic<bool>& stop) {
  const auto until = clock::now() + total;
  while (clock::now() < until && !stop.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

std::string stats_json(const ServeStats::Snapshot& s) {
  std::string out = "{";
  out += "\"accepted\":" + std::to_string(s.accepted);
  out += ",\"accept_faults\":" + std::to_string(s.accept_faults);
  out += ",\"evicted\":" + std::to_string(s.evicted);
  out += ",\"requests\":" + std::to_string(s.requests);
  out += ",\"responses\":" + std::to_string(s.responses);
  out += ",\"shed\":" + std::to_string(s.shed);
  out += ",\"bad_requests\":" + std::to_string(s.bad_requests);
  out += ",\"deadline_expired\":" + std::to_string(s.deadline_expired);
  out += ",\"watchdog_kicks\":" + std::to_string(s.watchdog_kicks);
  out += ",\"unavailable\":" + std::to_string(s.unavailable);
  out += ",\"reloads_ok\":" + std::to_string(s.reloads_ok);
  out += ",\"reload_failures\":" + std::to_string(s.reload_failures);
  out += "}";
  return out;
}

}  // namespace

ServeStats::Snapshot ServeStats::snapshot() const {
  return Snapshot{
      accepted.load(),        accept_faults.load(), evicted.load(),
      requests.load(),        responses.load(),     shed.load(),
      bad_requests.load(),    deadline_expired.load(),
      watchdog_kicks.load(),  unavailable.load(),   reloads_ok.load(),
      reload_failures.load(),
  };
}

Server::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      store_(cfg_.store_name.empty() ? "awe_serve" : cfg_.store_name,
             cfg_.store_name.empty() ? core::SharedModelStore::Backing::kHeap
                                     : core::SharedModelStore::Backing::kShm) {}

Server::~Server() {
  stop();
  if (drain_thread_.joinable()) drain_thread_.join();
}

core::CompiledModel Server::build_model() const {
  std::ifstream in(cfg_.deck_path);
  if (!in) throw std::runtime_error("cannot open deck " + cfg_.deck_path);
  circuit::ParsedDeck deck = circuit::parse_deck(in);
  if (deck.symbol_elements.empty() || deck.input_source.empty() ||
      deck.output_node.empty())
    throw std::runtime_error("deck needs .symbol/.input/.output directives");
  if (!cfg_.cache_dir.empty()) {
    // Through the persistent cache: a corrupt entry quarantines to .bad and
    // rebuilds (core/model_cache) instead of failing the reload.
    core::ModelCache cache(cfg_.cache_dir);
    const auto model = cache.get_or_build(deck.netlist, deck.symbol_elements,
                                          deck.input_source, deck.output_node,
                                          cfg_.model, {});
    return *model;
  }
  return core::CompiledModel::build(deck.netlist, deck.symbol_elements,
                                    deck.input_source, deck.output_node, cfg_.model);
}

std::shared_ptr<const Server::ModelMeta> Server::meta() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  return meta_;
}

void Server::set_meta(std::shared_ptr<const ModelMeta> m) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  meta_ = std::move(m);
}

void Server::start() {
  // Build + publish generation 1 before binding: a daemon that cannot
  // serve its first request should fail its start, not its clients.
  {
    const core::CompiledModel model = build_model();
    auto m = std::make_shared<ModelMeta>();
    m->symbols = model.symbol_names();
    m->order = model.order();
    // Nominal deck values for server-side Monte Carlo sampling.
    std::ifstream in(cfg_.deck_path);
    const circuit::ParsedDeck deck = circuit::parse_deck(in);
    for (const auto& s : m->symbols) {
      const auto idx = deck.netlist.find_element(s);
      m->nominal.push_back(idx ? deck.netlist.elements()[*idx].value : 0.0);
    }
    store_.publish(model);
    set_meta(std::move(m));
  }

  if (cfg_.tcp) {
    listen_fd_ = net::listen_tcp(cfg_.host, cfg_.port, bound_port_);
  } else {
    if (cfg_.unix_path.empty())
      throw std::runtime_error("server needs a unix socket path or --tcp");
    listen_fd_ = net::listen_unix(cfg_.unix_path);
  }

  worker_slots_.clear();
  for (std::size_t i = 0; i < cfg_.workers; ++i)
    worker_slots_.push_back(std::make_unique<WorkerSlot>());
  for (std::size_t i = 0; i < cfg_.workers; ++i)
    worker_threads_.emplace_back([this, i] { worker_loop(i); });
  if (cfg_.watchdog) watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfds[2] = {{listen_fd_, POLLIN, 0}, {wake_.read_fd(), POLLIN, 0}};
    const int pr = ::poll(pfds, 2, 200);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    wake_.drain();
    if (stop_.load(std::memory_order_acquire)) break;
    if (!(pfds[0].revents & POLLIN)) continue;

    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) continue;
    if (draining_.load(std::memory_order_acquire)) {
      ::close(cfd);
      continue;
    }
    if (health::failpoints::fires(health::failpoints::sites::kServeAccept)) {
      // Injected accept-path fault: drop this connection, keep serving.
      stats_.accept_faults.fetch_add(1, std::memory_order_relaxed);
      ::close(cfd);
      continue;
    }
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);

    auto conn = std::make_shared<Conn>();
    conn->fd = cfd;
    auto done = std::make_shared<std::atomic<bool>>(false);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->id = ++next_conn_id_;
      // Reap readers that already exited so a churn of short connections
      // doesn't accumulate thread handles forever.
      std::erase_if(reader_threads_, [](ReaderEntry& e) {
        if (!e.done->load(std::memory_order_acquire)) return false;
        e.thread.join();
        return true;
      });
      reader_threads_.push_back(ReaderEntry{
          std::thread([this, conn, done] {
            reader_loop(conn);
            done->store(true, std::memory_order_release);
          }),
          done});
    }
  }
}

void Server::reader_loop(std::shared_ptr<Conn> conn) {
  net::LineReader reader(conn->fd, cfg_.max_line_bytes);
  std::string line;
  while (!stop_.load(std::memory_order_acquire) && !conn->dead.load()) {
    if (draining_.load(std::memory_order_acquire)) break;  // no new requests
    const net::ReadStatus st =
        reader.read_line(line, cfg_.idle_timeout, cfg_.read_stall_timeout, stop_);
    if (st == net::ReadStatus::kIdle) {
      if (cfg_.idle_timeout.count() < 0) continue;  // idleness is free
      evict(conn);
      break;
    }
    if (st == net::ReadStatus::kStalled || st == net::ReadStatus::kTooLong) {
      // Slow-loris / oversized line: answer if the pipe still works, evict.
      respond(conn, error_response("?", errors::kBadRequest,
                                   st == net::ReadStatus::kTooLong
                                       ? "request line too long"
                                       : "request stalled mid-line"));
      evict(conn);
      break;
    }
    if (st != net::ReadStatus::kLine) break;  // kClosed / kStopped / kError

    if (health::failpoints::fires(health::failpoints::sites::kServeRead)) {
      // Injected read-path fault: treat as an unreadable connection.
      evict(conn);
      break;
    }

    const auto m = meta();
    Request req;
    try {
      req = parse_request(line, m->symbols.size(), cfg_.max_points);
    } catch (const ProtocolError& e) {
      stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
      respond(conn, error_response("?", errors::kBadRequest, e.what()));
      continue;  // a malformed request poisons nothing; keep the connection
    }

    switch (req.op) {
      case Op::kPing:
        respond(conn, ok_response("ping", req.id, ""));
        continue;
      case Op::kInfo:
        respond(conn, ok_response("info", req.id, info_body()));
        continue;
      case Op::kStatus:
        respond(conn, ok_response("status", req.id, status_body()));
        continue;
      case Op::kSleep:
        if (!cfg_.debug_ops) {
          stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
          respond(conn, error_response("sleep", errors::kBadRequest,
                                       "sleep requires --debug-ops", req.id));
          continue;
        }
        break;
      case Op::kEval:
      case Op::kReload:
        break;
    }

    Job job;
    job.conn = conn;
    job.bytes = line.size();
    job.req = std::move(req);
    admit(std::move(job));
  }
}

bool Server::admit(Job job) {
  const char* op = to_string(job.req.op);
  if (draining_.load(std::memory_order_acquire)) {
    stats_.unavailable.fetch_add(1, std::memory_order_relaxed);
    respond(job.conn,
            error_response(op, errors::kUnavailable, "server is draining", job.req.id));
    return false;
  }
  bool shed_queue_full = false;
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    shed_queue_full = queue_.size() >= cfg_.max_queue;
    shed = shed_queue_full || inflight_bytes_ + job.bytes > cfg_.max_inflight_bytes;
    if (!shed) {
      inflight_bytes_ += job.bytes;
      if (job.req.op == Op::kEval)
        stats_.requests.fetch_add(1, std::memory_order_relaxed);
      queue_.push_back(std::move(job));
    }
  }
  if (shed) {
    // Respond OUTSIDE the queue lock: shedding must never block workers
    // behind a slow client's write timeout.
    stats_.shed.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> hlock(health_mu_);
      health_.record_failure(health::FailClass::kOverload);
    }
    respond(job.conn,
            error_response(op, errors::kOverloaded,
                           shed_queue_full ? "request queue full"
                                           : "in-flight byte budget full",
                           job.req.id, cfg_.retry_after_ms));
    return false;
  }
  queue_cv_.notify_one();
  return true;
}

void Server::fail_queue(const char* code, const std::string& message) {
  std::deque<Job> failed;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    failed.swap(queue_);
    for (const Job& j : failed) inflight_bytes_ -= j.bytes;
  }
  for (Job& j : failed) {
    stats_.unavailable.fetch_add(1, std::memory_order_relaxed);
    respond(j.conn, error_response(to_string(j.req.op), code, message, j.req.id));
  }
  if (!failed.empty()) queue_cv_.notify_all();
}

void Server::worker_loop(std::size_t index) {
  // Each worker owns its pool: ThreadPool::parallel_chunks is not
  // concurrently reentrant, and per-worker pools keep eval latency
  // independent across concurrent requests.
  sweep::ThreadPool pool(std::max<std::size_t>(1, cfg_.threads_per_worker));
  WorkerSlot& slot = *worker_slots_[index];

  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) || !queue_.empty();
      });
      // Hard stop fails fast: whatever is still queued gets an
      // "unavailable" answer from fail_queue() in stop(), not a worker.
      if (stop_.load(std::memory_order_acquire)) return;
      if (queue_.empty()) continue;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
    }

    slot.kicked.store(false, std::memory_order_relaxed);
    slot.busy_since_ns.store(now_ns(), std::memory_order_release);
    switch (job.req.op) {
      case Op::kEval: handle_eval(job, slot, pool); break;
      case Op::kReload: handle_reload(job); break;
      case Op::kSleep: handle_sleep(job, slot); break;
      default: break;  // inline ops never reach the queue
    }
    slot.busy_since_ns.store(0, std::memory_order_release);
    slot.deadline_ns.store(0, std::memory_order_relaxed);

    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --executing_;
      inflight_bytes_ -= job.bytes;
    }
    queue_cv_.notify_all();  // wake the drain waiter and byte-budget shedders
  }
}

void Server::handle_eval(const Job& job, WorkerSlot& slot, sweep::ThreadPool& pool) {
  const EvalRequest& ev = job.req.eval;
  const auto m = meta();

  if (ev.cancel_after_checks != 0 && !cfg_.debug_ops) {
    stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    respond(job.conn, error_response("eval", errors::kBadRequest,
                                     "cancel_after_checks requires --debug-ops",
                                     job.req.id));
    return;
  }

  std::uint64_t gen = 0;
  const auto model = store_.acquire(&gen);
  if (!model) {
    stats_.unavailable.fetch_add(1, std::memory_order_relaxed);
    respond(job.conn, error_response("eval", errors::kUnavailable,
                                     "no model published", job.req.id));
    return;
  }

  std::vector<double> points;
  std::size_t n = 0;
  if (ev.mc != 0) {
    // Server-side Monte Carlo: normal(nominal, 5% of |nominal|) per
    // symbol, seeded — the same (mc, seed) always evaluates the same
    // points whatever worker or thread count handles it.
    std::vector<sweep::Distribution> dists;
    dists.reserve(m->nominal.size());
    for (const double v : m->nominal)
      dists.push_back(sweep::Distribution::normal(v, 0.05 * std::abs(v)));
    points = sweep::sample_points(dists, ev.mc, ev.seed);
    n = ev.mc;
  } else {
    points = ev.points_soa;
    n = ev.num_points;
  }

  sweep::CancelToken token;
  std::uint64_t deadline_ms = ev.deadline_ms ? ev.deadline_ms : cfg_.default_deadline_ms;
  if (cfg_.max_deadline_ms && deadline_ms)
    deadline_ms = std::min(deadline_ms, cfg_.max_deadline_ms);
  if (deadline_ms)
    token.set_deadline(clock::now() + std::chrono::milliseconds(deadline_ms));
  if (ev.cancel_after_checks) token.cancel_after_checks(ev.cancel_after_checks);

  // Register with the watchdog for the duration of the sweep.
  slot.deadline_ns.store(
      deadline_ms ? now_ns() + static_cast<std::int64_t>(deadline_ms) * 1'000'000 : 0,
      std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(slot.token_mu);
    slot.token = &token;
  }

  sweep::SweepOptions opts;
  opts.pool = &pool;
  opts.cancel = &token;

  sweep::SweepResult res;
  bool failed = false;
  health::FailClass fail_cls = health::FailClass::kUnknown;
  std::string fail_code;
  std::string fail_msg;
  try {
    res = sweep::run_sweep(*model, std::move(points), n, opts);
  } catch (const std::exception& e) {
    // Request-level containment: whatever a poisoned deck or injected
    // fault threw stays inside this response; the worker and its pool are
    // intact for the next request.
    failed = true;
    fail_cls = health::fail_class_of(e);
    fail_code = health::code(fail_cls);
    fail_msg = e.what();
  }
  {
    std::lock_guard<std::mutex> lock(slot.token_mu);
    slot.token = nullptr;
  }

  if (failed) {
    {
      std::lock_guard<std::mutex> lock(health_mu_);
      health_.record_failure(fail_cls);
    }
    respond(job.conn, error_response("eval", errors::kInternal,
                                     fail_code + ": " + fail_msg, job.req.id));
    return;
  }

  const std::uint64_t deadline_points = res.health.failures(health::FailClass::kDeadline);
  if (deadline_points > 0)
    stats_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    health_.merge(res.health);
  }

  std::string body;
  body += ",\"generation\":" + std::to_string(gen);
  // Echo the EFFECTIVE deadline (request override, else server default,
  // clamped to max_deadline_ms) so clients can see what limit applied.
  body += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  body += ",\"num_points\":" + std::to_string(res.num_points);
  body += ",\"ok_points\":" + std::to_string(res.ok_count);
  body += ",\"degraded\":" + std::to_string(res.health.points_degraded);
  body += ",\"quarantined\":" + std::to_string(res.health.points_quarantined);
  body += ",\"deadline_points\":" + std::to_string(deadline_points);
  body += ",\"deadline_expired\":";
  body += deadline_points > 0 ? "true" : "false";
  body += ",\"moment_stats\":[";
  for (std::size_t k = 0; k < res.moment_stats.size(); ++k) {
    const sweep::Stats& s = res.moment_stats[k];
    if (k) body += ",";
    body += "{\"min\":" + json::number_to_string(s.min);
    body += ",\"max\":" + json::number_to_string(s.max);
    body += ",\"mean\":" + json::number_to_string(s.mean);
    body += ",\"stddev\":" + json::number_to_string(s.stddev);
    body += ",\"count\":" + std::to_string(s.count) + "}";
  }
  body += "]";
  if (!ev.summary) {
    body += ",\"moments\":[";
    for (std::size_t p = 0; p < res.num_points; ++p) {
      if (p) body += ",";
      body += "[";
      for (std::size_t k = 0; k < res.num_moments; ++k) {
        if (k) body += ",";
        body += res.ok[p] ? json::number_to_string(res.moment(k, p)) : "null";
      }
      body += "]";
    }
    body += "],\"point_ok\":[";
    for (std::size_t p = 0; p < res.num_points; ++p) {
      if (p) body += ",";
      body += res.ok[p] ? "1" : "0";
    }
    body += "],\"point_fail\":[";
    for (std::size_t p = 0; p < res.num_points; ++p) {
      if (p) body += ",";
      body += json::quote(health::code(res.point_fail_class(p)));
    }
    body += "]";
  }
  respond(job.conn, ok_response("eval", job.req.id, body));
}

void Server::handle_reload(const Job& job) {
  std::chrono::milliseconds backoff = cfg_.reload_backoff;
  std::string last_error;
  for (std::size_t attempt = 1; attempt <= std::max<std::size_t>(1, cfg_.reload_attempts);
       ++attempt) {
    try {
      // The swap failpoint sits INSIDE the retry loop: serve.swap=once
      // fails exactly the first attempt, proving the backoff path.
      health::failpoints::maybe_fail(health::failpoints::sites::kServeSwap);
      const core::CompiledModel model = build_model();
      auto m = std::make_shared<ModelMeta>();
      m->symbols = model.symbol_names();
      m->order = model.order();
      std::ifstream in(cfg_.deck_path);
      const circuit::ParsedDeck deck = circuit::parse_deck(in);
      for (const auto& s : m->symbols) {
        const auto idx = deck.netlist.find_element(s);
        m->nominal.push_back(idx ? deck.netlist.elements()[*idx].value : 0.0);
      }
      const std::uint64_t gen = store_.publish(model);
      set_meta(std::move(m));
      stats_.reloads_ok.fetch_add(1, std::memory_order_relaxed);
      respond(job.conn,
              ok_response("reload", job.req.id,
                          ",\"generation\":" + std::to_string(gen) +
                              ",\"attempts\":" + std::to_string(attempt)));
      return;
    } catch (const std::exception& e) {
      last_error = e.what();
      stats_.reload_failures.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(health_mu_);
        health_.record_failure(health::fail_class_of(e));
      }
      if (attempt < cfg_.reload_attempts) {
        interruptible_sleep(backoff, stop_);
        backoff *= 2;  // bounded exponential backoff between attempts
      }
    }
  }
  // Every attempt failed: the PREVIOUS generation keeps serving — a bad
  // deck on disk degrades reload, never evaluation.
  respond(job.conn, error_response("reload", errors::kReloadFailed, last_error,
                                   job.req.id));
}

void Server::handle_sleep(const Job& job, WorkerSlot& slot) {
  // Debug op: simulate a wedged worker.  The slot's deadline is set to
  // "now", so an armed watchdog sees it overdue after one grace period and
  // force-cancels — the sleep wakes early and the slot frees.
  sweep::CancelToken token;
  slot.deadline_ns.store(now_ns(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(slot.token_mu);
    slot.token = &token;
  }
  const auto until = clock::now() + std::chrono::milliseconds(job.req.sleep_ms);
  while (clock::now() < until && !token.cancelled() &&
         !stop_.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  {
    std::lock_guard<std::mutex> lock(slot.token_mu);
    slot.token = nullptr;
  }
  respond(job.conn,
          ok_response("sleep", job.req.id,
                      std::string(",\"cancelled\":") + (token.cancelled() ? "true" : "false")));
}

void Server::watchdog_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    interruptible_sleep(cfg_.watchdog_interval, stop_);
    const std::int64_t now = now_ns();
    const std::int64_t grace_ns =
        static_cast<std::int64_t>(cfg_.watchdog_grace.count()) * 1'000'000;
    std::size_t busy = 0, wedged = 0;
    for (const auto& slot : worker_slots_) {
      const std::int64_t since = slot->busy_since_ns.load(std::memory_order_acquire);
      if (since == 0) continue;
      ++busy;
      const std::int64_t deadline = slot->deadline_ns.load(std::memory_order_relaxed);
      if (deadline == 0 || now < deadline + grace_ns) continue;
      if (!slot->kicked.exchange(true, std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(slot->token_mu);
        if (slot->token) {
          slot->token->cancel();
          stats_.watchdog_kicks.fetch_add(1, std::memory_order_relaxed);
        }
      }
      ++wedged;
    }
    // Fail fast instead of hanging: with every worker wedged, queued
    // requests would only go stale waiting for slots that may never free.
    if (!worker_slots_.empty() && busy == worker_slots_.size() &&
        wedged == worker_slots_.size())
      fail_queue(errors::kUnavailable, "all workers wedged past deadline");
  }
}

std::string Server::info_body() const {
  const auto m = meta();
  std::string body;
  body += ",\"deck\":" + json::quote(cfg_.deck_path);
  body += ",\"order\":" + std::to_string(m->order);
  body += ",\"moment_count\":" + std::to_string(2 * m->order);
  body += ",\"generation\":" + std::to_string(store_.generation());
  body += ",\"symbols\":[";
  for (std::size_t i = 0; i < m->symbols.size(); ++i) {
    if (i) body += ",";
    body += json::quote(m->symbols[i]);
  }
  body += "],\"nominal\":[";
  for (std::size_t i = 0; i < m->nominal.size(); ++i) {
    if (i) body += ",";
    body += json::number_to_string(m->nominal[i]);
  }
  body += "]";
  return body;
}

std::string Server::status_body() const {
  std::size_t depth = 0, executing = 0, inflight_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = queue_.size();
    executing = executing_;
    inflight_bytes = inflight_bytes_;
  }
  health::HealthReport h;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    h = health_;
  }
  std::string body;
  body += ",\"generation\":" + std::to_string(store_.generation());
  body += ",\"live_generations\":" + std::to_string(store_.live_generations());
  body += ",\"queue_depth\":" + std::to_string(depth);
  body += ",\"executing\":" + std::to_string(executing);
  body += ",\"inflight_bytes\":" + std::to_string(inflight_bytes);
  body += ",\"workers\":" + std::to_string(cfg_.workers);
  body += ",\"draining\":";
  body += draining_.load(std::memory_order_acquire) ? "true" : "false";
  body += ",\"stats\":" + stats_json(stats_.snapshot());
  body += ",\"points\":{\"total\":" + std::to_string(h.points_total);
  body += ",\"ok\":" + std::to_string(h.points_ok);
  body += ",\"degraded\":" + std::to_string(h.points_degraded);
  body += ",\"quarantined\":" + std::to_string(h.points_quarantined) + "}";
  body += ",\"fail_classes\":{";
  for (std::size_t c = 0; c < health::kFailClassCount; ++c) {
    if (c) body += ",";
    body += json::quote(health::code(static_cast<health::FailClass>(c)));
    body += ":" + std::to_string(h.fail_counts[c]);
  }
  body += "}";
  return body;
}

void Server::respond(const std::shared_ptr<Conn>& conn, std::string line) {
  if (conn->dead.load(std::memory_order_acquire)) return;
  line.push_back('\n');
  bool ok;
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    ok = net::write_all(conn->fd, line, cfg_.write_timeout, stop_);
  }
  if (!ok) {
    evict(conn);
    return;
  }
  stats_.responses.fetch_add(1, std::memory_order_relaxed);
}

void Server::evict(const std::shared_ptr<Conn>& conn) {
  if (conn->dead.exchange(true, std::memory_order_acq_rel)) return;
  stats_.evicted.fetch_add(1, std::memory_order_relaxed);
  // Shutdown (not close): the reader and any in-flight worker still hold
  // the fd; the Conn destructor closes it when the last holder drops.
  ::shutdown(conn->fd, SHUT_RDWR);
}

void Server::request_drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  wake_.notify();
  drain_thread_ = std::thread([this] {
    const auto deadline = clock::now() + cfg_.drain_timeout;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait_until(lock, deadline, [&] {
        return stop_.load(std::memory_order_acquire) ||
               (queue_.empty() && executing_ == 0);
      });
    }
    // Budget exhausted (or met): force-cancel stragglers so in-flight
    // evals deadline out with partial results rather than block the exit.
    for (const auto& slot : worker_slots_) {
      std::lock_guard<std::mutex> lock(slot->token_mu);
      if (slot->token) slot->token->cancel();
    }
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait_for(lock, std::chrono::seconds(2), [&] {
        return stop_.load(std::memory_order_acquire) ||
               (queue_.empty() && executing_ == 0);
      });
    }
    stop();
  });
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(finished_mu_);
    if (stop_.exchange(true, std::memory_order_acq_rel)) {
      return;  // first caller does the teardown
    }
  }
  draining_.store(true, std::memory_order_release);
  // Force-cancel in-flight evals: a hard stop must not wait a full sweep.
  for (const auto& slot : worker_slots_) {
    std::lock_guard<std::mutex> lock(slot->token_mu);
    if (slot->token) slot->token->cancel();
  }
  wake_.notify();
  queue_cv_.notify_all();

  if (accept_thread_.joinable()) accept_thread_.join();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  for (auto& t : worker_threads_) t.join();
  worker_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& e : reader_threads_) e.thread.join();
    reader_threads_.clear();
  }
  fail_queue(errors::kUnavailable, "server stopped");
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!cfg_.tcp && !cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
  }
  {
    std::lock_guard<std::mutex> lock(finished_mu_);
    finished_.store(true, std::memory_order_release);
  }
  finished_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(finished_mu_);
  finished_cv_.wait(lock, [&] { return finished_.load(std::memory_order_acquire); });
}

health::HealthReport Server::health_snapshot() const {
  health::HealthReport report;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    report = health_;
  }
  const auto s = stats_.snapshot();
  report.serve_requests = s.requests;
  report.serve_shed = s.shed;
  report.serve_deadline_expired = s.deadline_expired;
  report.serve_evicted = s.evicted;
  report.serve_reload_failures = s.reload_failures;
  return report;
}

}  // namespace awe::serve
