// Load-generation campaign against a running awe_serve daemon
// (DESIGN.md §16.6).  One code path computes the latency distribution for
// BOTH consumers — the awe_loadgen CLI and bench_serve_latency — so the
// committed perf baseline and the CI robustness job can never disagree on
// what "p99" means.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace awe::serve::loadgen {

struct CampaignOptions {
  /// Exactly one of unix_path / port selects the transport.
  std::string unix_path;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::size_t connections = 4;
  std::size_t requests = 32;     ///< per connection (ignored with duration_ms)
  std::uint64_t duration_ms = 0; ///< nonzero: run for wall time instead

  std::string op = "eval";       ///< "ping" or "eval"
  std::size_t mc = 64;           ///< eval: server-side Monte Carlo points
  std::uint64_t deadline_ms = 0; ///< eval: per-request deadline (0 = none)
  bool summary = false;          ///< eval: summary-only responses
  std::uint64_t seed = 1;        ///< connection c uses seed + c
  std::uint64_t timeout_ms = 30'000;
};

struct CampaignResult {
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t errors = 0;
  std::vector<double> latencies_us;  ///< sorted ascending over all requests
  double elapsed_s = 0.0;
  bool transport_error = false;

  std::uint64_t requests() const {
    return static_cast<std::uint64_t>(latencies_us.size());
  }
  double requests_per_s() const {
    return elapsed_s > 0 ? static_cast<double>(latencies_us.size()) / elapsed_s
                         : 0.0;
  }
  /// Nearest-rank percentile of the latency distribution, in microseconds.
  double percentile_us(double p) const;
};

/// Run one campaign: `connections` threads, each with its own connection,
/// firing requests back-to-back.  Shed and deadline-expired responses are
/// VALID outcomes (they are what a daemon degrading under load looks
/// like); only transport errors and malformed responses set
/// `transport_error`.
CampaignResult run_campaign(const CampaignOptions& opt);

}  // namespace awe::serve::loadgen
