// Minimal JSON for the evaluation daemon's wire protocol (DESIGN.md §16).
//
// awe_serve speaks line-delimited JSON; this is the self-contained parser
// and serializer behind it.  Deliberately small: UTF-8 pass-through (no
// surrogate handling beyond \uXXXX → UTF-8), numbers are always double,
// objects preserve insertion order so serialization is deterministic.
// Depth-limited so a hostile request ("[[[[[...") cannot blow the stack —
// the daemon parses attacker-supplied bytes.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace awe::serve::json {

/// Thrown by parse() with a byte offset and reason.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t offset, const std::string& what)
      : std::runtime_error("json: offset " + std::to_string(offset) + ": " + what),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

struct Value {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< insertion order

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup (first match); nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  static Value make_null() { return Value{}; }
  static Value make_bool(bool b);
  static Value make_number(double d);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> items = {});
  static Value make_object();

  /// Append a member to an object value (no duplicate checking).
  Value& set(std::string key, Value v);
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
/// `max_depth` bounds array/object nesting.
Value parse(std::string_view text, std::size_t max_depth = 64);

/// Serialize deterministically: members in insertion order, numbers via
/// shortest round-trip ("%.17g" trimmed), no whitespace.
std::string dump(const Value& v);

/// Escape and quote a string literal per JSON rules.
std::string quote(std::string_view s);

/// Shortest round-trip double literal (integral values print without ".0").
std::string number_to_string(double d);

}  // namespace awe::serve::json
