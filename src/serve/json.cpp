#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace awe::serve::json {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind = Kind::kBool;
  v.boolean = b;
  return v;
}

Value Value::make_number(double d) {
  Value v;
  v.kind = Kind::kNumber;
  v.number = d;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind = Kind::kString;
  v.str = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> items) {
  Value v;
  v.kind = Kind::kArray;
  v.array = std::move(items);
  return v;
}

Value Value::make_object() {
  Value v;
  v.kind = Kind::kObject;
  return v;
}

Value& Value::set(std::string key, Value v) {
  object.emplace_back(std::move(key), std::move(v));
  return *this;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const { throw ParseError(pos_, what); }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value(std::size_t depth) {
    if (depth > max_depth_) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value::make_null();
      default: return parse_number();
    }
  }

  Value parse_object(std::size_t depth) {
    ++pos_;  // '{'
    Value v = Value::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') fail("expected ':'");
      ++pos_;
      v.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == '}') return v;
      if (sep != ',') fail("expected ',' or '}'");
    }
  }

  Value parse_array(std::size_t depth) {
    ++pos_;  // '['
    Value v = Value::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == ']') return v;
      if (sep != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode as UTF-8; unpaired surrogates pass through as-is bytes
          // of their code point — the daemon never round-trips them.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-')
        ++pos_;
      else
        break;
    }
    if (pos_ == start) fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      pos_ = start;
      fail("bad number");
    }
    return Value::make_number(d);
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
};

void dump_to(const Value& v, std::string& out) {
  switch (v.kind) {
    case Value::Kind::kNull: out += "null"; break;
    case Value::Kind::kBool: out += v.boolean ? "true" : "false"; break;
    case Value::Kind::kNumber: out += number_to_string(v.number); break;
    case Value::Kind::kString: out += quote(v.str); break;
    case Value::Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i) out.push_back(',');
        dump_to(v.array[i], out);
      }
      out.push_back(']');
      break;
    }
    case Value::Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        if (i) out.push_back(',');
        out += quote(v.object[i].first);
        out.push_back(':');
        dump_to(v.object[i].second, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Value parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

std::string dump(const Value& v) {
  std::string out;
  dump_to(v, out);
  return out;
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string number_to_string(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no NaN/Inf; be explicit
  // Integral values within the exact-double range print as integers: the
  // wire protocol is full of counts and the short form is stable.
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    return buf;
  }
  // Shortest round-trip: try increasing precision until strtod agrees.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

}  // namespace awe::serve::json
