// Socket plumbing for the evaluation daemon (DESIGN.md §16).
//
// Everything here is poll(2)-driven and interruptible: reads and writes
// poll in short ticks against both the socket and a stop flag so a
// SIGTERM drain (or a test teardown) never waits on a stuck peer.  Writes
// use MSG_NOSIGNAL and handle short writes — a client that disappears
// mid-response produces an error return, never a SIGPIPE.  The line
// reader enforces a maximum line length (a request is attacker-supplied
// bytes) and distinguishes "idle between requests" from "stalled mid-
// line": only the latter is a slow-loris signature worth evicting.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace awe::serve::net {

/// Bind + listen on a TCP socket.  `port` 0 picks an ephemeral port;
/// `bound_port` receives the actual one.  Throws std::runtime_error.
int listen_tcp(const std::string& host, std::uint16_t port, std::uint16_t& bound_port);

/// Bind + listen on a Unix-domain socket, replacing a stale path (a
/// kill -9'd predecessor leaves one behind).  Throws std::runtime_error.
int listen_unix(const std::string& path);

/// Connect helpers for clients (loadgen, tests).  Throw std::runtime_error.
int connect_tcp(const std::string& host, std::uint16_t port);
int connect_unix(const std::string& path);

/// Ignore SIGPIPE process-wide; a dead peer surfaces as EPIPE instead.
void ignore_sigpipe();

/// Wake-a-poll-loop primitive.  Signal-safe: notify() is one write(2) on a
/// non-blocking pipe, callable from a signal handler.
class SelfPipe {
 public:
  SelfPipe();
  ~SelfPipe();
  SelfPipe(const SelfPipe&) = delete;
  SelfPipe& operator=(const SelfPipe&) = delete;

  int read_fd() const { return fds_[0]; }
  void notify();
  void drain();

 private:
  int fds_[2];
};

enum class ReadStatus : std::uint8_t {
  kLine,     ///< a complete line is in `out` (newline stripped)
  kIdle,     ///< idle_timeout expired with NO partial line buffered
  kStalled,  ///< stall_timeout expired MID-line (slow-loris; evict)
  kTooLong,  ///< line exceeded max_line bytes (evict)
  kClosed,   ///< orderly EOF
  kStopped,  ///< stop flag observed
  kError,    ///< read(2) error
};

/// Buffered newline-delimited reader over one fd.
class LineReader {
 public:
  LineReader(int fd, std::size_t max_line) : fd_(fd), max_line_(max_line) {}

  /// Block (in poll ticks) until a line, a timeout, EOF, or `stop`.
  /// idle_timeout applies while the buffer holds no partial line;
  /// stall_timeout applies from the first byte of an incomplete line.
  ReadStatus read_line(std::string& out, std::chrono::milliseconds idle_timeout,
                       std::chrono::milliseconds stall_timeout,
                       const std::atomic<bool>& stop);

  /// Bytes buffered beyond the last returned line.
  std::size_t buffered() const { return buf_.size(); }

 private:
  int fd_;
  std::size_t max_line_;
  std::string buf_;
};

/// Write all of `data`, polling for writability in ticks; fails (false)
/// on peer loss, `timeout` without progress, or `stop`.
bool write_all(int fd, std::string_view data, std::chrono::milliseconds timeout,
               const std::atomic<bool>& stop);

}  // namespace awe::serve::net
