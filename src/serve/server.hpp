// awe_serve's fault-tolerant evaluation server (DESIGN.md §16).
//
// A long-running daemon answering line-delimited JSON eval requests
// against ONE logical compiled model held in a SharedModelStore.  The
// design goal is containment: no single client, request, or reload may
// take the process down or wedge it.
//
//   accept thread ──▶ one reader thread per connection ──▶ bounded queue
//                                                             │
//   watchdog thread ◀── heartbeats ── N worker threads ◀──────┘
//                                      (each owns a sweep ThreadPool)
//
// Robustness mechanisms, each independently testable:
//  * Deadlines — every eval carries a CancelToken; the sweep engine polls
//    it per SoA batch, so a timed-out request frees its worker within one
//    batch and answers with partial, kDeadline-accounted results.
//  * Admission control — a full queue or too many in-flight request bytes
//    sheds the request with {"error":"overloaded","retry_after_ms":...}
//    BEFORE any work happens; shedding is cheaper than queueing.
//  * Slow-client eviction — a connection stalled mid-request-line or
//    unable to absorb its response within the write timeout is evicted;
//    idle-but-silent connections are not (idleness is free).
//  * Watchdog — a monitor thread compares per-worker heartbeats against
//    request deadlines; a wedged worker's token is force-cancelled, and
//    when every worker is wedged the queue is failed fast ("unavailable")
//    instead of growing stale.
//  * Crash-safe reload — "reload" rebuilds from the deck and publishes a
//    new store generation with bounded exponential backoff; a reload that
//    keeps failing leaves the old generation serving.  In-flight sweeps
//    pinned the old generation and finish bit-identically (§15.4).
//  * Graceful drain — request_drain() (SIGTERM) stops accepting, lets
//    queued + running requests finish or deadline out within the drain
//    budget, then flushes a final HealthReport.
//
// Failpoints serve.accept / serve.read / serve.swap inject faults at the
// accept loop, the connection reader, and the reload publish for the CI
// robustness matrix.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/awesymbolic.hpp"
#include "core/model_store.hpp"
#include "engine/cancel.hpp"
#include "engine/sweep.hpp"
#include "health/report.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace awe::serve {

struct ServerConfig {
  // Endpoint: exactly one of unix_path / tcp (port may be 0 = ephemeral).
  std::string unix_path;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  bool tcp = false;

  // Model source.
  std::string deck_path;
  core::ModelOptions model;
  std::string cache_dir;   ///< build through ModelCache (quarantine reuse) when set
  std::string store_name;  ///< shm store name; empty = private heap backing

  // Concurrency.
  std::size_t workers = 2;             ///< eval worker threads
  std::size_t threads_per_worker = 1;  ///< sweep ThreadPool width per worker

  // Admission control.
  std::size_t max_queue = 16;                   ///< queued requests before shedding
  std::size_t max_line_bytes = 1u << 20;        ///< request line cap (evict beyond)
  std::size_t max_inflight_bytes = 8u << 20;    ///< queued request bytes before shedding
  std::size_t max_points = 1u << 20;            ///< per-request point cap
  std::uint64_t retry_after_ms = 50;            ///< hint in shed responses

  // Deadlines and timeouts (milliseconds).
  std::uint64_t default_deadline_ms = 0;   ///< applied when a request names none
  std::uint64_t max_deadline_ms = 60'000;  ///< requests are clamped to this
  std::chrono::milliseconds idle_timeout{-1};     ///< silent-connection cap; -1 = none
  std::chrono::milliseconds read_stall_timeout{2'000};  ///< mid-line stall → evict
  std::chrono::milliseconds write_timeout{2'000};       ///< response stall → evict
  std::chrono::milliseconds drain_timeout{10'000};      ///< SIGTERM drain budget

  // Watchdog.
  bool watchdog = false;
  std::chrono::milliseconds watchdog_interval{100};
  std::chrono::milliseconds watchdog_grace{500};  ///< past deadline before kicking

  // Reload.
  std::size_t reload_attempts = 3;
  std::chrono::milliseconds reload_backoff{25};  ///< doubles per attempt

  bool debug_ops = false;  ///< enable "sleep" and eval.cancel_after_checks
};

/// Monotonic daemon counters.  Deterministic under deterministic load (no
/// sampling, every event counted exactly once); snapshot() is the "stats"
/// object of a status response.
struct ServeStats {
  std::atomic<std::uint64_t> accepted{0};         ///< connections accepted
  std::atomic<std::uint64_t> accept_faults{0};    ///< serve.accept injections
  std::atomic<std::uint64_t> evicted{0};          ///< slow/oversized/faulted conns
  std::atomic<std::uint64_t> requests{0};         ///< eval requests admitted
  std::atomic<std::uint64_t> responses{0};        ///< response lines written
  std::atomic<std::uint64_t> shed{0};             ///< requests shed by admission
  std::atomic<std::uint64_t> bad_requests{0};     ///< protocol errors answered
  std::atomic<std::uint64_t> deadline_expired{0}; ///< evals that hit their deadline
  std::atomic<std::uint64_t> watchdog_kicks{0};   ///< tokens force-cancelled
  std::atomic<std::uint64_t> unavailable{0};      ///< failed fast (drain/wedge)
  std::atomic<std::uint64_t> reloads_ok{0};       ///< successful reload publishes
  std::atomic<std::uint64_t> reload_failures{0};  ///< reload attempts that failed

  struct Snapshot {
    std::uint64_t accepted, accept_faults, evicted, requests, responses, shed,
        bad_requests, deadline_expired, watchdog_kicks, unavailable, reloads_ok,
        reload_failures;
  };
  Snapshot snapshot() const;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Build + publish the initial model, bind, and spawn all threads.
  /// Throws std::runtime_error on any startup failure (nothing leaks).
  void start();

  /// Begin a graceful drain: stop accepting, answer queued work, let
  /// running evals finish or deadline out within drain_timeout, then stop.
  /// Callable from any thread (SIGTERM handler notifies via self-pipe).
  void request_drain();

  /// Hard stop: cancel everything, join all threads, close all sockets.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Block until stop() (or a completed drain) has finished.
  void wait();

  bool draining() const { return draining_.load(std::memory_order_acquire); }
  std::uint16_t bound_port() const { return bound_port_; }
  const ServeStats& stats() const { return stats_; }

  /// Server-lifetime HealthReport: every sweep's health merged plus the
  /// serve counters.  Process-global counters are NOT absorbed here — the
  /// shutdown flush (cli::HealthJsonSink::flush_report) does that once.
  health::HealthReport health_snapshot() const;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::mutex write_mu;
    std::atomic<bool> dead{false};
    ~Conn();
  };

  struct Job {
    std::shared_ptr<Conn> conn;
    Request req;
    std::size_t bytes = 0;  ///< request line size, for the in-flight budget
  };

  /// Per-worker watchdog slot: written by the worker around each job,
  /// read by the watchdog thread.
  struct WorkerSlot {
    std::atomic<std::int64_t> busy_since_ns{0};  ///< steady ns; 0 = idle
    std::atomic<std::int64_t> deadline_ns{0};    ///< steady ns; 0 = none
    std::atomic<bool> kicked{false};
    std::mutex token_mu;
    sweep::CancelToken* token = nullptr;  ///< guarded by token_mu
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Conn> conn);
  void worker_loop(std::size_t index);
  void watchdog_loop();

  /// True when accepted into the queue; false when shed (response sent).
  bool admit(Job job);
  void fail_queue(const char* code, const std::string& message);

  void handle_eval(const Job& job, WorkerSlot& slot, sweep::ThreadPool& pool);
  void handle_reload(const Job& job);
  void handle_sleep(const Job& job, WorkerSlot& slot);
  std::string status_body() const;
  std::string info_body() const;

  /// Serialize + send one response line; evicts the connection on failure.
  void respond(const std::shared_ptr<Conn>& conn, std::string line);
  void evict(const std::shared_ptr<Conn>& conn);

  /// Parse the deck and build a fresh model (through the cache when
  /// configured).  Pure; throws on failure.
  core::CompiledModel build_model() const;
  /// Derived per-model facts readers need without touching the store.
  struct ModelMeta {
    std::vector<std::string> symbols;
    std::vector<double> nominal;  ///< deck values, for server-side MC
    std::size_t order = 0;
  };
  std::shared_ptr<const ModelMeta> meta() const;
  void set_meta(std::shared_ptr<const ModelMeta> m);

  ServerConfig cfg_;
  core::SharedModelStore store_;
  mutable std::mutex meta_mu_;
  std::shared_ptr<const ModelMeta> meta_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  net::SelfPipe wake_;

  std::atomic<bool> stop_{false};      ///< hard-stop flag all loops poll
  std::atomic<bool> draining_{false};  ///< drain requested; no new accepts/reads
  std::atomic<bool> finished_{false};
  std::mutex finished_mu_;
  std::condition_variable finished_cv_;

  // Bounded request queue.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  std::size_t inflight_bytes_ = 0;   ///< queued + executing request bytes
  std::size_t executing_ = 0;        ///< jobs currently inside a worker

  std::thread accept_thread_;
  std::thread watchdog_thread_;
  std::thread drain_thread_;
  std::vector<std::thread> worker_threads_;
  std::vector<std::unique_ptr<WorkerSlot>> worker_slots_;

  /// One reader thread per live connection; `done` flips when the loop
  /// exits so the accept loop can join-and-reap finished readers instead
  /// of accumulating joinable handles across a long connection churn.
  struct ReaderEntry {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  mutable std::mutex conns_mu_;
  std::vector<ReaderEntry> reader_threads_;
  std::uint64_t next_conn_id_ = 0;

  ServeStats stats_;
  mutable std::mutex health_mu_;
  health::HealthReport health_;  ///< merged sweep health (server lifetime)
};

}  // namespace awe::serve
