#include "serve/protocol.hpp"

#include <cmath>

namespace awe::serve {

namespace {

/// Non-negative integral number field, bounded.
std::uint64_t uint_field(const json::Value& v, const char* name, std::uint64_t max) {
  if (!v.is_number() || v.number < 0 || v.number != std::floor(v.number))
    throw ProtocolError(std::string(name) + " must be a non-negative integer");
  if (v.number > static_cast<double>(max))
    throw ProtocolError(std::string(name) + " too large");
  return static_cast<std::uint64_t>(v.number);
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kInfo: return "info";
    case Op::kStatus: return "status";
    case Op::kEval: return "eval";
    case Op::kReload: return "reload";
    case Op::kSleep: return "sleep";
  }
  return "?";
}

Request parse_request(const std::string& line, std::size_t num_symbols,
                      std::size_t max_points) {
  json::Value doc;
  try {
    doc = json::parse(line);
  } catch (const json::ParseError& e) {
    throw ProtocolError(e.what());
  }
  if (!doc.is_object()) throw ProtocolError("request must be a JSON object");

  Request req;
  const json::Value* op = doc.find("op");
  if (!op || !op->is_string()) throw ProtocolError("missing \"op\"");
  if (op->str == "ping") req.op = Op::kPing;
  else if (op->str == "info") req.op = Op::kInfo;
  else if (op->str == "status") req.op = Op::kStatus;
  else if (op->str == "eval") req.op = Op::kEval;
  else if (op->str == "reload") req.op = Op::kReload;
  else if (op->str == "sleep") req.op = Op::kSleep;
  else throw ProtocolError("unknown op \"" + op->str + "\"");

  if (const json::Value* id = doc.find("id"))
    req.id = uint_field(*id, "id", UINT64_MAX / 2);

  if (req.op == Op::kSleep) {
    if (const json::Value* ms = doc.find("ms"))
      req.sleep_ms = uint_field(*ms, "ms", 60'000);
    return req;
  }
  if (req.op != Op::kEval) return req;

  EvalRequest& ev = req.eval;
  const json::Value* points = doc.find("points");
  const json::Value* mc = doc.find("mc");
  if ((points == nullptr) == (mc == nullptr))
    throw ProtocolError("eval needs exactly one of \"points\" or \"mc\"");

  if (points) {
    if (!points->is_array() || points->array.empty())
      throw ProtocolError("\"points\" must be a non-empty array of arrays");
    const std::size_t n = points->array.size();
    if (n > max_points) throw ProtocolError("too many points");
    ev.num_points = n;
    ev.points_soa.assign(num_symbols * n, 0.0);
    for (std::size_t p = 0; p < n; ++p) {
      const json::Value& row = points->array[p];
      if (!row.is_array() || row.array.size() != num_symbols)
        throw ProtocolError("each point must list exactly " +
                            std::to_string(num_symbols) + " symbol values");
      for (std::size_t i = 0; i < num_symbols; ++i) {
        const json::Value& cell = row.array[i];
        if (!cell.is_number()) throw ProtocolError("point values must be numbers");
        ev.points_soa[i * n + p] = cell.number;
      }
    }
  } else {
    ev.mc = uint_field(*mc, "mc", max_points);
    if (ev.mc == 0) throw ProtocolError("\"mc\" must be at least 1");
    if (const json::Value* seed = doc.find("seed"))
      ev.seed = uint_field(*seed, "seed", UINT64_MAX / 2);
  }

  if (const json::Value* dl = doc.find("deadline_ms"))
    ev.deadline_ms = uint_field(*dl, "deadline_ms", 3'600'000);
  if (const json::Value* cac = doc.find("cancel_after_checks"))
    ev.cancel_after_checks = uint_field(*cac, "cancel_after_checks", 1u << 30);
  if (const json::Value* s = doc.find("summary")) {
    if (!s->is_bool()) throw ProtocolError("\"summary\" must be a boolean");
    ev.summary = s->boolean;
  }
  return req;
}

std::string error_response(const char* op, const char* code, const std::string& message,
                           std::optional<std::uint64_t> id,
                           std::uint64_t retry_after_ms) {
  std::string out = "{\"ok\":false,\"op\":";
  out += json::quote(op);
  if (id) out += ",\"id\":" + std::to_string(*id);
  out += ",\"error\":";
  out += json::quote(code);
  out += ",\"message\":";
  out += json::quote(message);
  if (retry_after_ms) out += ",\"retry_after_ms\":" + std::to_string(retry_after_ms);
  out += "}";
  return out;
}

std::string ok_response(const char* op, std::optional<std::uint64_t> id,
                        const std::string& body) {
  std::string out = "{\"ok\":true,\"op\":";
  out += json::quote(op);
  if (id) out += ",\"id\":" + std::to_string(*id);
  out += body;
  out += "}";
  return out;
}

}  // namespace awe::serve
