#include "serve/loadgen.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "serve/json.hpp"
#include "serve/net.hpp"

namespace awe::serve::loadgen {
namespace {

using clock_type = std::chrono::steady_clock;

/// Per-connection tally, merged into the CampaignResult after the join.
struct Tally {
  std::vector<double> latencies_us;
  std::uint64_t ok = 0, shed = 0, deadline = 0, errors = 0;
  bool transport_error = false;
};

void run_connection(const CampaignOptions& opt, std::size_t index, Tally& tally,
                    const std::atomic<bool>& deadline_hit) {
  static const std::atomic<bool> never_stop{false};
  int fd = -1;
  try {
    fd = opt.unix_path.empty() ? net::connect_tcp(opt.host, opt.port)
                               : net::connect_unix(opt.unix_path);
  } catch (const std::exception&) {
    tally.transport_error = true;
    return;
  }
  net::LineReader reader(fd, 64u << 20);

  std::string request = "{\"op\":\"" + opt.op + "\"";
  if (opt.op == "eval") {
    request += ",\"mc\":" + std::to_string(opt.mc);
    request += ",\"seed\":" + std::to_string(opt.seed + index);
    if (opt.deadline_ms)
      request += ",\"deadline_ms\":" + std::to_string(opt.deadline_ms);
    if (opt.summary) request += ",\"summary\":true";
  }
  request += "}\n";

  const auto read_timeout = std::chrono::milliseconds(opt.timeout_ms);
  std::string line;
  for (std::size_t r = 0;
       opt.duration_ms ? !deadline_hit.load() : r < opt.requests; ++r) {
    const auto t0 = clock_type::now();
    if (!net::write_all(fd, request, read_timeout, never_stop)) {
      tally.transport_error = true;
      break;
    }
    const net::ReadStatus st =
        reader.read_line(line, read_timeout, read_timeout, never_stop);
    if (st != net::ReadStatus::kLine) {
      tally.transport_error = true;
      break;
    }
    const auto t1 = clock_type::now();
    tally.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());

    try {
      const json::Value doc = json::parse(line);
      const json::Value* ok = doc.find("ok");
      if (ok && ok->is_bool() && ok->boolean) {
        const json::Value* dl = doc.find("deadline_expired");
        if (dl && dl->is_bool() && dl->boolean) ++tally.deadline;
        else ++tally.ok;
      } else {
        const json::Value* code = doc.find("error");
        if (code && code->is_string() && code->str == "overloaded") ++tally.shed;
        else ++tally.errors;
      }
    } catch (const std::exception&) {
      tally.transport_error = true;
      break;
    }
  }
  ::close(fd);
}

}  // namespace

double CampaignResult::percentile_us(double p) const {
  if (latencies_us.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(latencies_us.size() - 1) + 0.5);
  return latencies_us[std::min(idx, latencies_us.size() - 1)];
}

CampaignResult run_campaign(const CampaignOptions& opt) {
  std::vector<Tally> tallies(opt.connections);
  std::atomic<bool> deadline_hit{false};
  std::vector<std::thread> threads;
  const auto start = clock_type::now();
  for (std::size_t c = 0; c < opt.connections; ++c)
    threads.emplace_back(
        [&, c] { run_connection(opt, c, tallies[c], deadline_hit); });
  if (opt.duration_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.duration_ms));
    deadline_hit.store(true);
  }
  for (auto& t : threads) t.join();

  CampaignResult res;
  res.elapsed_s =
      std::chrono::duration<double>(clock_type::now() - start).count();
  for (const Tally& t : tallies) {
    res.ok += t.ok;
    res.shed += t.shed;
    res.deadline_expired += t.deadline;
    res.errors += t.errors;
    res.latencies_us.insert(res.latencies_us.end(), t.latencies_us.begin(),
                            t.latencies_us.end());
    res.transport_error = res.transport_error || t.transport_error;
  }
  std::sort(res.latencies_us.begin(), res.latencies_us.end());
  return res;
}

}  // namespace awe::serve::loadgen
