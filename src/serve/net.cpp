#include "serve/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace awe::serve::net {

namespace {

constexpr std::chrono::milliseconds kPollTick{100};

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

}  // namespace

int listen_tcp(const std::string& host, std::uint16_t port, std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  set_cloexec(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("bind/listen " + host + ":" + std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("getsockname");
  }
  bound_port = ntohs(addr.sin_port);
  return fd;
}

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("unix socket path too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  set_cloexec(fd);
  // A kill -9'd predecessor leaves the path bound; replace it the same way
  // the shm store replaces a stale region name.
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("bind/listen " + path);
  }
  return fd;
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  set_cloexec(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("unix socket path too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  set_cloexec(fd);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("connect " + path);
  }
  return fd;
}

void ignore_sigpipe() { ::signal(SIGPIPE, SIG_IGN); }

SelfPipe::SelfPipe() {
  if (::pipe(fds_) != 0) throw_errno("pipe");
  for (const int fd : fds_) {
    ::fcntl(fd, F_SETFL, O_NONBLOCK);
    set_cloexec(fd);
  }
}

SelfPipe::~SelfPipe() {
  ::close(fds_[0]);
  ::close(fds_[1]);
}

void SelfPipe::notify() {
  const char b = 1;
  // Signal-handler-safe: one write on a non-blocking fd; a full pipe means
  // a wake-up is already pending, which is all a notification needs.
  [[maybe_unused]] const ssize_t rc = ::write(fds_[1], &b, 1);
}

void SelfPipe::drain() {
  char buf[64];
  while (::read(fds_[0], buf, sizeof(buf)) > 0) {
  }
}

ReadStatus LineReader::read_line(std::string& out, std::chrono::milliseconds idle_timeout,
                                 std::chrono::milliseconds stall_timeout,
                                 const std::atomic<bool>& stop) {
  using clock = std::chrono::steady_clock;
  auto take_line = [&]() -> bool {
    const auto nl = buf_.find('\n');
    if (nl == std::string::npos) return false;
    out.assign(buf_, 0, nl);
    if (!out.empty() && out.back() == '\r') out.pop_back();
    buf_.erase(0, nl + 1);
    return true;
  };
  if (take_line()) return ReadStatus::kLine;

  // The timer serves double duty: while the buffer is empty it measures
  // idleness; once the first byte of a line lands (reset below) it
  // measures how long the line takes to COMPLETE — the slow-loris signal.
  auto timer_start = clock::now();
  for (;;) {
    if (stop.load(std::memory_order_acquire)) return ReadStatus::kStopped;
    const auto limit = buf_.empty() ? idle_timeout : stall_timeout;
    if (limit.count() >= 0 && clock::now() - timer_start >= limit)
      return buf_.empty() ? ReadStatus::kIdle : ReadStatus::kStalled;

    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(kPollTick.count()));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
    if (pr == 0) continue;

    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n == 0) return ReadStatus::kClosed;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ReadStatus::kError;
    }
    const bool was_empty = buf_.empty();
    buf_.append(chunk, static_cast<std::size_t>(n));
    if (take_line()) return ReadStatus::kLine;
    if (buf_.size() > max_line_) return ReadStatus::kTooLong;
    // First byte of an incomplete line: start the stall clock here, not at
    // call entry — an idle-for-minutes connection is not mid-line-stalled.
    // Deliberately NOT reset on later partial progress: a byte-at-a-time
    // trickle is exactly the stall being measured.
    if (was_empty) timer_start = clock::now();
  }
}

bool write_all(int fd, std::string_view data, std::chrono::milliseconds timeout,
               const std::atomic<bool>& stop) {
  using clock = std::chrono::steady_clock;
  std::size_t off = 0;
  auto last_progress = clock::now();
  while (off < data.size()) {
    if (stop.load(std::memory_order_acquire)) return false;
    if (clock::now() - last_progress >= timeout) return false;

    pollfd pfd{fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(kPollTick.count()));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) continue;

    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;  // EPIPE/ECONNRESET: peer is gone; caller evicts quietly
    }
    off += static_cast<std::size_t>(n);
    last_progress = clock::now();
  }
  return true;
}

}  // namespace awe::serve::net
