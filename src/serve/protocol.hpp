// Wire protocol of the evaluation daemon (DESIGN.md §16).
//
// One request per line, one response line per request, both JSON objects.
// Requests carry {"op": "..."} plus op-specific fields; every response
// carries {"ok": true|false, "op": ...} and, on failure, a stable machine
// code in "error" (see ErrorCode) with a human "message".  The protocol
// layer is pure data — it never touches sockets — so tests can exercise
// request validation and response shapes without a daemon.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/json.hpp"

namespace awe::serve {

/// Stable machine-readable error codes ("error" field of a failure
/// response).  Wire-frozen: clients and the CI robustness matrix match on
/// these strings.
namespace errors {
inline constexpr const char* kBadRequest = "bad_request";    ///< malformed JSON / fields
inline constexpr const char* kOverloaded = "overloaded";     ///< shed by admission control
inline constexpr const char* kDeadline = "deadline";         ///< deadline expired pre-eval
inline constexpr const char* kUnavailable = "unavailable";   ///< draining or wedged
inline constexpr const char* kReloadFailed = "reload_failed";///< model reload gave up
inline constexpr const char* kInternal = "internal";         ///< contained server fault
}  // namespace errors

/// Malformed request; message is safe to echo to the client.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Op : std::uint8_t {
  kPing,    ///< liveness + round-trip anchor; answered inline by the reader
  kInfo,    ///< model identity: symbols, order, generation
  kStatus,  ///< ServeStats + HealthReport + queue/pin observability
  kEval,    ///< run a sweep against the pinned current generation
  kReload,  ///< rebuild from the deck and publish a new generation
  kSleep,   ///< debug (--debug-ops): occupy a worker slot for N ms
};

struct EvalRequest {
  /// Explicit points, point-major as received ([[v0,v1,..],[..],..]),
  /// already transposed to SoA (symbol-major) by parse_request.
  std::vector<double> points_soa;
  std::size_t num_points = 0;
  /// Monte Carlo alternative: sample `mc` points server-side around the
  /// deck's nominal values (seeded, deterministic).  Exclusive with points.
  std::size_t mc = 0;
  std::uint64_t seed = 42;
  std::uint64_t deadline_ms = 0;  ///< 0 = server default
  bool summary = false;           ///< stats only; omit per-point moments
  /// Debug (--debug-ops only): expire the request's CancelToken on the
  /// n-th engine poll — the deterministic "deadline hits exactly mid-
  /// sweep" the robustness tests need without wall-clock races.
  std::uint64_t cancel_after_checks = 0;
};

struct Request {
  Op op = Op::kPing;
  std::optional<std::uint64_t> id;  ///< echoed verbatim in the response
  EvalRequest eval;                 ///< op == kEval
  std::uint64_t sleep_ms = 0;       ///< op == kSleep
};

/// Validate and decode one request line.  `num_symbols` checks eval point
/// arity; `max_points` bounds both explicit and mc point counts.  Throws
/// ProtocolError (client-safe message) on anything malformed.
Request parse_request(const std::string& line, std::size_t num_symbols,
                      std::size_t max_points);

const char* to_string(Op op);

/// {"ok":false,"op":OP,"error":CODE,"message":MSG[,"id":ID][,"retry_after_ms":N]}
std::string error_response(const char* op, const char* code, const std::string& message,
                           std::optional<std::uint64_t> id = std::nullopt,
                           std::uint64_t retry_after_ms = 0);

/// {"ok":true,"op":OP,...fields...}  — `body` is appended verbatim after
/// the fixed prefix; pass fields pre-serialized ( ",\"k\":v" form).
std::string ok_response(const char* op, std::optional<std::uint64_t> id,
                        const std::string& body);

}  // namespace awe::serve
