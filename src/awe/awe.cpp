#include "awe/awe.hpp"

#include <stdexcept>

namespace awe::engine {

ReducedOrderModel run_awe(const circuit::Netlist& netlist, const std::string& input_source,
                          circuit::NodeId output_node, const AweOptions& opts) {
  MomentGenerator gen(netlist, opts.expansion_point);
  const auto moments = gen.transfer_moments(input_source, output_node, 2 * opts.order);
  RomOptions rom_opts;
  rom_opts.order = opts.order;
  rom_opts.enforce_stability = opts.enforce_stability;
  rom_opts.allow_order_fallback = opts.allow_order_fallback;
  if (opts.expansion_point == 0.0)
    return ReducedOrderModel::from_moments(moments, rom_opts);
  return ReducedOrderModel::from_shifted_moments(moments, rom_opts,
                                                 opts.expansion_point);
}

ReducedOrderModel run_awe(const circuit::Netlist& netlist, const std::string& input_source,
                          const std::string& output_node, const AweOptions& opts) {
  const auto node = netlist.find_node(output_node);
  if (!node) throw std::invalid_argument("run_awe: unknown output node '" + output_node + "'");
  return run_awe(netlist, input_source, *node, opts);
}

}  // namespace awe::engine
