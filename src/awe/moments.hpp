// Moment generation for Asymptotic Waveform Evaluation.
//
// The moments of H(s) = c^T (G + sC)^{-1} b are the Maclaurin coefficients
//   m_k = c^T x_k,   x_0 = G^{-1} b,   x_k = -G^{-1} C x_{k-1},
// each computed from a DC solve against the same LU factorization — the
// "DC circuit related simply to the original system" of the paper.  The
// generator retains the state-moment vectors x_k because the adjoint
// sensitivity analysis consumes them.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "circuit/mna.hpp"
#include "linalg/sparse_lu.hpp"

namespace awe::engine {

class MomentGenerator {
 public:
  /// Factors the expansion matrix (G + s0*C) once.  The default s0 = 0 is
  /// the classic Maclaurin expansion; a positive real s0 shifts the
  /// expansion point (standard AWE practice when the s = 0 expansion is
  /// ill-conditioned or G is singular — a shifted expansion exists for any
  /// circuit whose pencil is regular).  Throws std::runtime_error when
  /// G + s0*C is singular.
  explicit MomentGenerator(const circuit::Netlist& netlist, double expansion_point = 0.0);

  /// Moments m_0..m_{count-1} of the transfer from `input_source` (unit
  /// amplitude) to the voltage of `output_node`.
  std::vector<double> transfer_moments(const std::string& input_source,
                                       circuit::NodeId output_node,
                                       std::size_t count) const;

  /// State-moment vectors x_0..x_{count-1} for the given input.
  std::vector<linalg::Vector> state_moments(const std::string& input_source,
                                            std::size_t count) const;

  /// Adjoint-moment vectors z_0..z_{count-1}:
  ///   z_0 = G^{-T} c,  z_i = -G^{-T} C^T z_{i-1}.
  std::vector<linalg::Vector> adjoint_moments(circuit::NodeId output_node,
                                              std::size_t count) const;

  const circuit::MnaAssembler& assembler() const { return assembler_; }
  const linalg::SparseMatrix& g_matrix() const { return g_; }
  const linalg::SparseMatrix& c_matrix() const { return c_; }
  double expansion_point() const { return s0_; }

 private:
  circuit::MnaAssembler assembler_;
  linalg::SparseMatrix g_;
  linalg::SparseMatrix c_;
  double s0_ = 0.0;
  std::optional<linalg::SparseLu> lu_;  // factorization of G + s0*C
};

}  // namespace awe::engine
