#include "awe/tree_moments.hpp"

#include <algorithm>

namespace awe::engine {

using circuit::Element;
using circuit::ElementKind;
using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;

std::optional<RcTreeAnalyzer> RcTreeAnalyzer::build(const Netlist& netlist,
                                                    const std::string& input_source) {
  const auto input_idx = netlist.find_element(input_source);
  if (!input_idx) return std::nullopt;
  const Element& src = netlist.elements()[*input_idx];
  if (src.kind != ElementKind::kVoltageSource || src.neg != kGround ||
      src.pos == kGround)
    return std::nullopt;

  const std::size_t n = netlist.num_nodes() + 1;  // node ids are 1..num_nodes
  RcTreeAnalyzer tree;
  tree.parent_.assign(n, 0);
  tree.r_up_.assign(n, 0.0);
  tree.cap_.assign(n, 0.0);
  tree.root_ = src.pos;

  // Resistor adjacency; reject anything that is not {this V source,
  // resistor between non-ground nodes, capacitor to ground}.
  std::vector<std::vector<std::pair<NodeId, double>>> adj(n);
  std::size_t resistor_count = 0;
  for (std::size_t i = 0; i < netlist.elements().size(); ++i) {
    const Element& e = netlist.elements()[i];
    if (i == *input_idx) continue;
    switch (e.kind) {
      case ElementKind::kResistor:
        if (e.pos == kGround || e.neg == kGround) return std::nullopt;  // leak to ground
        adj[e.pos].emplace_back(e.neg, e.value);
        adj[e.neg].emplace_back(e.pos, e.value);
        ++resistor_count;
        break;
      case ElementKind::kCapacitor: {
        NodeId node;
        if (e.neg == kGround)
          node = e.pos;
        else if (e.pos == kGround)
          node = e.neg;
        else
          return std::nullopt;  // floating/coupling capacitor
        if (node != kGround) tree.cap_[node] += e.value;
        break;
      }
      default:
        return std::nullopt;
    }
  }

  // A spanning tree over the non-ground nodes has exactly n-1 edges;
  // anything else (parallel resistors, cycles, islands) is not a tree.
  if (resistor_count + 1 != netlist.num_nodes()) return std::nullopt;

  // BFS from the root; every non-ground node must be reached exactly once.
  std::vector<bool> seen(n, false);
  seen[tree.root_] = true;
  tree.parent_[tree.root_] = tree.root_;
  tree.topo_order_.push_back(tree.root_);
  for (std::size_t head = 0; head < tree.topo_order_.size(); ++head) {
    const NodeId u = tree.topo_order_[head];
    for (const auto& [v, r] : adj[u]) {
      if (v == tree.parent_[u] && u != tree.root_) continue;  // edge to parent
      if (seen[v]) return std::nullopt;                       // cycle
      seen[v] = true;
      tree.parent_[v] = u;
      tree.r_up_[v] = r;
      tree.topo_order_.push_back(v);
    }
  }
  for (NodeId v = 1; v < n; ++v)
    if (!seen[v]) return std::nullopt;  // disconnected node
  return tree;
}

std::vector<std::vector<double>> RcTreeAnalyzer::all_node_moments(std::size_t count) const {
  const std::size_t n = parent_.size();
  std::vector<std::vector<double>> m(count, std::vector<double>(n, 0.0));
  if (count == 0) return m;

  // k = 0: unit DC everywhere (no resistive drop without cap currents).
  for (const NodeId v : topo_order_) m[0][v] = 1.0;

  std::vector<double> subtree_q(n, 0.0);
  for (std::size_t k = 1; k < count; ++k) {
    // Upward pass: subtree cap charge against the previous moments.
    for (std::size_t i = topo_order_.size(); i-- > 0;) {
      const NodeId v = topo_order_[i];
      subtree_q[v] = cap_[v] * m[k - 1][v];
    }
    for (std::size_t i = topo_order_.size(); i-- > 1;) {  // root excluded
      const NodeId v = topo_order_[i];
      subtree_q[parent_[v]] += subtree_q[v];
    }
    // Downward pass: the source holds 0 for k >= 1.
    m[k][root_] = 0.0;
    for (std::size_t i = 1; i < topo_order_.size(); ++i) {
      const NodeId v = topo_order_[i];
      m[k][v] = m[k][parent_[v]] - r_up_[v] * subtree_q[v];
    }
  }
  return m;
}

std::vector<double> RcTreeAnalyzer::transfer_moments(NodeId output,
                                                     std::size_t count) const {
  const auto all = all_node_moments(count);
  std::vector<double> m(count);
  for (std::size_t k = 0; k < count; ++k) m[k] = all[k].at(output);
  return m;
}

}  // namespace awe::engine
