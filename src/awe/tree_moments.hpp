// Path-tracing moment computation for RC trees (RICE-style).
//
// For the dominant AWE workload — RC interconnect trees (one driver,
// resistor tree, grounded capacitors) — the moment recursion
//   G x_k = -C x_{k-1}
// does not need a matrix factorization at all: the k-th voltage moments
// follow from two O(n) tree traversals,
//   upward:    I_e^{(k)} = sum_{j in subtree(e)} C_j V_j^{(k-1)}
//   downward:  V_child^{(k)} = V_parent^{(k)} - R_e I_e^{(k)}
// with V^{(0)} = V_source everywhere and V_source^{(k>=1)} = 0.  This is
// the linear-time engine of RICE (Ratzlaff & Pillage) and friends; here it
// serves as the fast path for tree workloads and as an independent
// cross-check of the sparse-LU moment generator.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace awe::engine {

class RcTreeAnalyzer {
 public:
  /// Recognizes an RC tree driven by `input_source` (a V source): every
  /// non-source element must be a resistor (forming a tree rooted at the
  /// source's positive node) or a capacitor to ground.  Returns
  /// std::nullopt when the netlist is not such a tree (cycles, floating
  /// parts, inductors, controlled sources, multiple sources, ...).
  static std::optional<RcTreeAnalyzer> build(const circuit::Netlist& netlist,
                                             const std::string& input_source);

  std::size_t node_count() const { return parent_.size(); }

  /// Moments m_0..m_{count-1} of v(output)/v_in — identical (to round-off)
  /// to MomentGenerator::transfer_moments, but O(n * count).
  std::vector<double> transfer_moments(circuit::NodeId output, std::size_t count) const;

  /// Moments of every node at once (the RICE use case: one pass gives the
  /// delay model of every sink).  moments[k][node] with node indexed by
  /// the original NodeId (entry 0 / ground unused).
  std::vector<std::vector<double>> all_node_moments(std::size_t count) const;

 private:
  RcTreeAnalyzer() = default;

  // Tree arrays indexed by original NodeId (0 = ground unused except that
  // the source node's parent edge has the driver resistance).
  std::vector<std::size_t> parent_;        // parent node id (root: itself)
  std::vector<double> r_up_;               // resistance of edge to parent
  std::vector<double> cap_;                // grounded cap at node
  std::vector<std::size_t> topo_order_;    // root first, children after parents
  std::size_t root_ = 0;                   // node driven through the source
};

}  // namespace awe::engine
