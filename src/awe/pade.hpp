// Padé approximation from moments (the AWE core, Pillage & Rohrer 1990).
//
// Given 2q moments of H(s), compute the order-q Padé approximant
//   H(s) ~= N(s)/D(s),  deg N = q-1, deg D = q, D(0) = 1,
// by solving the q x q Hankel moment system for the denominator and
// back-substituting the numerator.  Moments are frequency-scaled before
// the solve (s -> s/w0) to control the notorious conditioning of moment
// matrices; poles are scaled back afterwards.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/dense.hpp"

namespace awe::engine {

struct PadeResult {
  std::size_t order = 0;
  /// Numerator coefficients a_0..a_{q-1} (ascending powers of s).
  std::vector<double> numerator;
  /// Denominator coefficients 1, b_1..b_q (ascending powers of s).
  std::vector<double> denominator;
  /// Frequency scale used internally (poles already unscaled).
  double scale = 1.0;
  /// Poles (roots of the denominator), conjugate pairs adjacent.
  linalg::CVector poles;
  /// Residues r_i = N(p_i)/D'(p_i) of the pole-residue expansion
  /// H(s) = sum_i r_i / (s - p_i).
  linalg::CVector residues;
};

/// Compute the order-q Padé approximant from at least 2q moments.
/// Throws std::invalid_argument when too few moments are supplied and
/// std::runtime_error when the Hankel system is singular (moment
/// degeneracy — retry with a lower order).
PadeResult pade_from_moments(std::span<const double> moments, std::size_t order);

/// Largest order q such that the q x q Hankel system of these moments is
/// numerically nonsingular; useful for automatic order selection.
std::size_t max_feasible_order(std::span<const double> moments);

/// Batched SoA Padé pre-pass for the sweep hot path (DESIGN.md §12): for
/// each lane p < count with ok[p] != 0 and fully finite moments, replicate
/// bit-for-bit the scalar sequence ReducedOrderModel::from_moments runs on
/// that lane — the max_feasible_order probe when allow_fallback, then
/// pade_from_moments — and store the approximant in results[p].  Moment k
/// of lane p is read at moments[k*stride + p] (2*order moments per lane).
/// Lanes that fail anywhere (no feasible order, singular Hankel, repeated
/// pole) get results[p].order = 0 and raise nothing: the caller's
/// per-point degradation ladder re-runs the scalar path on exactly those
/// lanes and classifies the failure as before.  The happy path through a
/// lane block is thereby free of per-point exception dispatch; combined
/// with ReducedOrderModel::from_pade it moves the whole q x q solve phase
/// out of the per-point loop.  Returns the number of lanes solved.
std::size_t pade_solve_batch(std::span<const double> moments, std::size_t stride,
                             std::size_t count, std::size_t order, bool allow_fallback,
                             std::span<const unsigned char> ok,
                             std::span<PadeResult> results);

/// Evaluate N(s)/D(s) at complex s.
std::complex<double> evaluate_pade(const PadeResult& pade, std::complex<double> s);

}  // namespace awe::engine
