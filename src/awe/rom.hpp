// Reduced-order model: the object an AWE analysis produces.
//
// A pole/residue form  H(s) = sum_i r_i / (s - p_i)  that can be evaluated
// in closed form in both domains — frequency sweeps, impulse and step
// responses, and the amplifier performance measures used throughout the
// paper's examples (DC gain, dominant pole, unity-gain frequency, phase
// margin, delay).  Optionally enforces stability by discarding
// right-half-plane Padé artifacts and re-fitting residues to the leading
// moments (standard AWE practice; the paper notes accurate orders are
// "often less than five" exactly because high orders go unstable).
#pragma once

#include <complex>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "awe/pade.hpp"
#include "linalg/dense.hpp"

namespace awe::engine {

struct RomOptions {
  std::size_t order = 2;
  /// Drop unstable (Re >= 0) poles and re-fit residues to the leading
  /// moments.  A stable circuit with an accurate order never triggers it.
  bool enforce_stability = true;
  /// If the requested order's Hankel system is singular, fall back to the
  /// largest feasible order instead of throwing.
  bool allow_order_fallback = true;
};

class ReducedOrderModel {
 public:
  /// Build from >= 2*order moments.
  static ReducedOrderModel from_moments(std::span<const double> moments,
                                        const RomOptions& opts);

  /// Assemble a model from an already-computed Padé approximant of
  /// `moments` (direct-term extraction, stability filter, residue re-fit —
  /// the tail of from_moments).  `pade` must have been produced by
  /// pade_from_moments at the order from_moments would have selected for
  /// these moments; then from_pade(pade, moments, opts) equals
  /// from_moments(moments, opts) bit for bit.  This is the assembly half of
  /// the sweep engine's batched pade_solve_batch pre-pass.
  static ReducedOrderModel from_pade(PadeResult pade, std::span<const double> moments,
                                     const RomOptions& opts);

  /// Build from moments of the expansion about a real shift point s0
  /// (i.e. Maclaurin coefficients of H(s0 + sigma) in sigma).  Poles are
  /// shifted back to the s-domain; residues are shift-invariant.  The
  /// stored moments() remain the sigma-domain moments.
  static ReducedOrderModel from_shifted_moments(std::span<const double> moments,
                                                const RomOptions& opts, double s0);

  std::size_t order() const { return poles_.size(); }
  const linalg::CVector& poles() const { return poles_; }
  const linalg::CVector& residues() const { return residues_; }
  /// Direct feedthrough term: nonzero only for pole-free (purely
  /// resistive) transfers, where H(s) = d exactly.
  double direct() const { return direct_; }
  /// The moments this model was built from (unscaled).
  const std::vector<double>& moments() const { return moments_; }
  bool is_stable() const;

  // -- frequency domain -------------------------------------------------
  std::complex<double> transfer(std::complex<double> s) const;
  double magnitude(double freq_hz) const;
  double phase_deg(double freq_hz) const;
  double dc_gain() const;
  /// Pole with the smallest |Re| (slowest), if any.
  std::optional<std::complex<double>> dominant_pole() const;
  /// Frequency (Hz) where |H| crosses 1 (0 when |H(0)| <= 1).
  double unity_gain_frequency() const;
  /// 180 + phase(H) at the unity-gain frequency, in degrees.
  double phase_margin_deg() const;

  // -- time domain --------------------------------------------------------
  /// h(t) = sum_i Re[r_i e^{p_i t}]  (unit impulse response).
  double impulse_response(double t) const;
  /// y(t) = sum_i Re[(r_i/p_i)(e^{p_i t} - 1)]  (unit step response).
  double step_response(double t) const;
  /// Response to a unit-slope ramp input (integral of the step response) —
  /// the excitation used by the ramp-input delay-model literature that
  /// builds on AWE.
  double ramp_response(double t) const;
  /// Elmore delay estimate -m_1/m_0 (first moment of the normalized
  /// impulse response) — the classic interconnect delay metric.
  double elmore_delay() const;
  std::vector<double> step_response(std::span<const double> times) const;
  /// Final value of the step response (= H(0)).
  double step_final_value() const;
  /// First time the step response crosses `fraction` of its final value
  /// (bisection on the analytic form); nullopt if never within t_max.
  std::optional<double> step_crossing_time(double fraction, double t_max) const;

 private:
  ReducedOrderModel() = default;

  linalg::CVector poles_;
  linalg::CVector residues_;
  std::vector<double> moments_;
  double direct_ = 0.0;
};

/// Dense complex linear solve by Gaussian elimination with partial
/// pivoting; used for the residue re-fit (tiny systems).  Exposed for
/// testing.  a is row-major n x n.
linalg::CVector solve_complex_dense(std::vector<std::complex<double>> a, linalg::CVector b);

}  // namespace awe::engine
