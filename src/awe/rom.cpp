#include "awe/rom.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "health/status.hpp"

namespace awe::engine {

linalg::CVector solve_complex_dense(std::vector<std::complex<double>> a, linalg::CVector b) {
  const std::size_t n = b.size();
  if (a.size() != n * n) throw std::invalid_argument("solve_complex_dense: shape mismatch");
  auto at = [&](std::size_t r, std::size_t c) -> std::complex<double>& {
    return a[r * n + c];
  };
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    double best = std::abs(at(k, k));
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::abs(at(i, k)) > best) {
        best = std::abs(at(i, k));
        piv = i;
      }
    if (best < 1e-300)
      throw health::FailError(health::FailClass::kHankelIllConditioned,
                              "solve_complex_dense: singular system");
    if (piv != k) {
      for (std::size_t j = k; j < n; ++j) std::swap(at(k, j), at(piv, j));
      std::swap(b[k], b[piv]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const auto m = at(i, k) / at(k, k);
      if (m == std::complex<double>{}) continue;
      for (std::size_t j = k; j < n; ++j) at(i, j) -= m * at(k, j);
      b[i] -= m * b[k];
    }
  }
  for (std::size_t ii = n; ii-- > 0;) {
    auto s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= at(ii, j) * b[j];
    b[ii] = s / at(ii, ii);
  }
  return b;
}

namespace {

/// Re-fit residues of the kept poles to the leading moments:
///   m_j = -sum_i r_i / p_i^{j+1},  j = 0..q-1.
linalg::CVector refit_residues(const linalg::CVector& poles,
                               std::span<const double> moments) {
  const std::size_t q = poles.size();
  std::vector<std::complex<double>> a(q * q);
  linalg::CVector rhs(q);
  for (std::size_t j = 0; j < q; ++j) {
    for (std::size_t i = 0; i < q; ++i) {
      // -1 / p_i^{j+1}
      std::complex<double> inv = -1.0 / poles[i];
      std::complex<double> term = inv;
      for (std::size_t e = 0; e < j; ++e) term *= 1.0 / poles[i];
      a[j * q + i] = term;
    }
    rhs[j] = moments[j];
  }
  return solve_complex_dense(std::move(a), std::move(rhs));
}

}  // namespace

ReducedOrderModel ReducedOrderModel::from_shifted_moments(std::span<const double> moments,
                                                          const RomOptions& opts,
                                                          double s0) {
  // Padé in the sigma domain, without stability filtering (stability is a
  // property of the s-domain poles).
  RomOptions sigma_opts = opts;
  sigma_opts.enforce_stability = false;
  ReducedOrderModel rom = from_moments(moments, sigma_opts);
  for (auto& p : rom.poles_) p += s0;

  if (opts.enforce_stability) {
    linalg::CVector stable;
    for (const auto& p : rom.poles_)
      if (p.real() < 0.0) stable.push_back(p);
    if (stable.empty())
      throw health::FailError(
          health::FailClass::kAllPolesUnstable,
          "ReducedOrderModel: all shifted Padé poles unstable; circuit/order invalid");
    if (stable.size() != rom.poles_.size()) {
      rom.poles_ = stable;
      // Re-fit in the sigma domain where the moments live.
      linalg::CVector sigma_poles = stable;
      for (auto& p : sigma_poles) p -= s0;
      rom.residues_ = refit_residues(sigma_poles, moments);
    }
  }
  return rom;
}

ReducedOrderModel ReducedOrderModel::from_moments(std::span<const double> moments,
                                                  const RomOptions& opts) {
  std::size_t order = opts.order;
  if (opts.allow_order_fallback) {
    const std::size_t feasible = max_feasible_order(moments.subspan(
        0, std::min(moments.size(), 2 * order)));
    if (feasible == 0)
      throw health::FailError(health::FailClass::kOrderCollapse,
                              "ReducedOrderModel: no feasible Padé order");
    order = std::min(order, feasible);
  }
  return from_pade(pade_from_moments(moments, order), moments, opts);
}

ReducedOrderModel ReducedOrderModel::from_pade(PadeResult pade,
                                               std::span<const double> moments,
                                               const RomOptions& opts) {
  const std::size_t order = pade.order;
  ReducedOrderModel rom;
  rom.moments_.assign(moments.begin(), moments.begin() + static_cast<std::ptrdiff_t>(2 * order));
  rom.poles_ = pade.poles;
  rom.residues_ = pade.residues;

  // Direct (feedthrough) term.  When the Padé's trailing denominator
  // coefficient vanishes (order collapse), numerator and denominator end
  // up with equal degree and H(inf) = lead(N)/lead(D) != 0 — e.g. pure
  // capacitive feedthrough paths or purely resistive transfers (no poles
  // at all, H = m0).  The residues r_i = N(p_i)/D'(p_i) remain correct in
  // the decomposition H = d + sum r_i/(s - p_i).
  {
    std::size_t nd = pade.numerator.size();
    while (nd > 0 && pade.numerator[nd - 1] == 0.0) --nd;
    std::size_t dd = pade.denominator.size();
    while (dd > 0 && pade.denominator[dd - 1] == 0.0) --dd;
    if (nd != 0 && nd == dd)
      rom.direct_ = pade.numerator[nd - 1] / pade.denominator[dd - 1];
  }

  if (opts.enforce_stability) {
    linalg::CVector stable;
    for (const auto& p : rom.poles_)
      if (p.real() < 0.0) stable.push_back(p);
    if (stable.size() != rom.poles_.size()) {
      if (stable.empty())
        throw health::FailError(
            health::FailClass::kAllPolesUnstable,
            "ReducedOrderModel: all Padé poles unstable; circuit/order invalid");
      rom.poles_ = stable;
      // Re-fit with the direct term removed from the zeroth moment
      // (m_0 = d - sum r/p).
      std::vector<double> adj(moments.begin(), moments.end());
      adj[0] -= rom.direct_;
      rom.residues_ = refit_residues(rom.poles_, adj);
    }
  }
  return rom;
}

bool ReducedOrderModel::is_stable() const {
  return std::all_of(poles_.begin(), poles_.end(),
                     [](const std::complex<double>& p) { return p.real() < 0.0; });
}

std::complex<double> ReducedOrderModel::transfer(std::complex<double> s) const {
  std::complex<double> h{direct_, 0.0};
  for (std::size_t i = 0; i < poles_.size(); ++i) h += residues_[i] / (s - poles_[i]);
  return h;
}

double ReducedOrderModel::magnitude(double freq_hz) const {
  return std::abs(transfer({0.0, 2.0 * M_PI * freq_hz}));
}

double ReducedOrderModel::phase_deg(double freq_hz) const {
  return std::arg(transfer({0.0, 2.0 * M_PI * freq_hz})) * 180.0 / M_PI;
}

double ReducedOrderModel::dc_gain() const { return transfer({0.0, 0.0}).real(); }

std::optional<std::complex<double>> ReducedOrderModel::dominant_pole() const {
  if (poles_.empty()) return std::nullopt;
  return *std::min_element(poles_.begin(), poles_.end(),
                           [](const auto& a, const auto& b) {
                             return std::abs(a.real()) < std::abs(b.real());
                           });
}

double ReducedOrderModel::unity_gain_frequency() const {
  if (std::abs(dc_gain()) <= 1.0) return 0.0;
  // Bracket the crossing on a log-frequency grid anchored at the dominant
  // pole, then bisect.
  const auto dom = dominant_pole();
  double f_lo = dom ? std::abs(dom->real()) / (2.0 * M_PI) * 1e-3 : 1e-3;
  if (f_lo <= 0.0) f_lo = 1e-3;
  double f_hi = f_lo;
  for (int i = 0; i < 400 && magnitude(f_hi) > 1.0; ++i) f_hi *= 2.0;
  if (magnitude(f_hi) > 1.0) return 0.0;  // never crosses in range
  for (int i = 0; i < 200; ++i) {
    const double mid = std::sqrt(f_lo * f_hi);
    if (magnitude(mid) > 1.0)
      f_lo = mid;
    else
      f_hi = mid;
  }
  return std::sqrt(f_lo * f_hi);
}

double ReducedOrderModel::phase_margin_deg() const {
  const double fu = unity_gain_frequency();
  if (fu <= 0.0) return 180.0;
  // Phase accumulated between DC and the unity-gain frequency.  Measuring
  // relative to the DC phase makes the margin convention-independent for
  // inverting amplifiers (arg H(0) = 180 deg).
  double shift = phase_deg(fu) - std::arg(transfer({0.0, 0.0})) * 180.0 / M_PI;
  while (shift > 0.0) shift -= 360.0;
  while (shift <= -360.0) shift += 360.0;
  return 180.0 + shift;
}

double ReducedOrderModel::impulse_response(double t) const {
  double h = 0.0;
  for (std::size_t i = 0; i < poles_.size(); ++i)
    h += (residues_[i] * std::exp(poles_[i] * t)).real();
  return h;
}

double ReducedOrderModel::step_response(double t) const {
  double y = (t >= 0.0) ? direct_ : 0.0;
  for (std::size_t i = 0; i < poles_.size(); ++i)
    y += ((residues_[i] / poles_[i]) * (std::exp(poles_[i] * t) - 1.0)).real();
  return y;
}

double ReducedOrderModel::ramp_response(double t) const {
  // Integral of the step response:
  //   int_0^t (r/p)(e^{p tau} - 1) dtau = (r/p)((e^{p t} - 1)/p - t).
  double y = direct_ * t;
  for (std::size_t i = 0; i < poles_.size(); ++i) {
    const auto rp = residues_[i] / poles_[i];
    y += (rp * ((std::exp(poles_[i] * t) - 1.0) / poles_[i] - t)).real();
  }
  return y;
}

double ReducedOrderModel::elmore_delay() const {
  if (moments_.size() < 2 || moments_[0] == 0.0) return 0.0;
  return -moments_[1] / moments_[0];
}

std::vector<double> ReducedOrderModel::step_response(std::span<const double> times) const {
  std::vector<double> y;
  y.reserve(times.size());
  for (const double t : times) y.push_back(step_response(t));
  return y;
}

double ReducedOrderModel::step_final_value() const { return dc_gain(); }

std::optional<double> ReducedOrderModel::step_crossing_time(double fraction,
                                                            double t_max) const {
  const double target = fraction * step_final_value();
  const double y0 = step_response(0.0);
  // Scan for a bracket, then bisect.
  constexpr int kScan = 4096;
  double prev_t = 0.0, prev_y = y0;
  for (int i = 1; i <= kScan; ++i) {
    const double t = t_max * static_cast<double>(i) / kScan;
    const double y = step_response(t);
    if ((prev_y - target) * (y - target) <= 0.0 && prev_y != y) {
      double lo = prev_t, hi = t;
      for (int it = 0; it < 100; ++it) {
        const double mid = 0.5 * (lo + hi);
        if ((step_response(mid) - target) * (prev_y - target) > 0.0)
          lo = mid;
        else
          hi = mid;
      }
      return 0.5 * (lo + hi);
    }
    prev_t = t;
    prev_y = y;
  }
  return std::nullopt;
}

}  // namespace awe::engine
