// Exact AC (frequency-domain) analysis.
//
// Solves (G + jwC) x = b directly at each frequency via the equivalent
// real 2n x 2n system  [[G, -wC], [wC, G]] [Re x; Im x] = [b; 0], reusing
// the real sparse LU machinery.  This is the exact reference the AWE
// reduced-order models are validated against in the tests and benches
// (the role a long SPICE .AC run plays in the paper's ecosystem).
#pragma once

#include <complex>
#include <span>
#include <string>
#include <vector>

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "linalg/sparse.hpp"

namespace awe::engine {

struct AcPoint {
  double freq_hz = 0.0;
  std::complex<double> response;  ///< H(j 2*pi*f) from input to output
};

class AcAnalysis {
 public:
  /// Builds G and C once; each sweep point costs one 2n x 2n sparse solve.
  AcAnalysis(const circuit::Netlist& netlist, std::string input_source,
             circuit::NodeId output_node);

  /// Exact transfer function value at one frequency.
  std::complex<double> transfer(double freq_hz) const;

  /// Sweep an arbitrary frequency list.
  std::vector<AcPoint> sweep(std::span<const double> freqs_hz) const;

  /// Logarithmically spaced frequency grid (inclusive endpoints).
  static std::vector<double> log_space(double f_start_hz, double f_stop_hz,
                                       std::size_t points);

 private:
  circuit::MnaAssembler assembler_;
  linalg::SparseMatrix g_;
  linalg::SparseMatrix c_;
  linalg::Vector rhs_;
  std::size_t out_index_ = 0;
};

}  // namespace awe::engine
