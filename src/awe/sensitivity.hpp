// AWEsensitivity: adjoint pole/zero sensitivity analysis (Lee, Huang,
// Rohrer, ICCAD).
//
// Moment sensitivities come from the adjoint (transposed) system: with the
// state-moment chain x_j and the adjoint chain z_i, every element's
// contribution is a handful of sparse inner products through its local
// dG/dC stamp pattern —
//   d m_k / dp = - sum_{j<=k} z_{k-j}^T dG_p x_j
//                - sum_{j<=k-1} z_{k-1-j}^T dC_p x_j.
// Pole (and zero) sensitivities then follow by differentiating the Hankel
// system and the characteristic polynomial.  The paper uses the resulting
// normalized sensitivities to pick which elements deserve symbolic
// treatment (§2.3); rank_symbol_candidates implements that selection.
#pragma once

#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include "awe/moments.hpp"
#include "circuit/netlist.hpp"

namespace awe::engine {

/// dm[k][e] = d m_k / d(value of element e); zero columns for elements
/// whose value is not differentiable (independent sources, VCVS, ...).
struct MomentSensitivities {
  std::vector<std::vector<double>> dm;       ///< [moment][element]
  std::vector<bool> differentiable;          ///< per element
};

MomentSensitivities moment_sensitivities(const MomentGenerator& gen,
                                         const std::string& input_source,
                                         circuit::NodeId output_node, std::size_t count);

/// Sensitivities of the order-q Padé poles and zeros with respect to every
/// element value, via the chain rule through the moment Hankel system.
struct PoleZeroSensitivities {
  linalg::CVector poles;
  linalg::CVector zeros;
  /// dpole[i][e] = d p_i / d v_e
  std::vector<linalg::CVector> dpole;
  /// dzero[i][e] = d z_i / d v_e
  std::vector<linalg::CVector> dzero;
};

PoleZeroSensitivities pole_zero_sensitivities(std::span<const double> moments,
                                              const MomentSensitivities& ms,
                                              std::size_t order);

/// Chain-rule core shared by the adjoint single-point path above and the
/// compiled reverse-mode batch path (CompiledModel gradients, sweep
/// engine — DESIGN.md §14): propagate d(moments)/dv for an arbitrary
/// variable set through the Padé/Hankel system to pole and zero
/// sensitivities.  `dm` is [moment k][variable v] with at least 2q rows;
/// `active[v]` masks which columns to propagate (inactive columns return
/// zero).  Throws std::runtime_error on a singular Hankel system.
PoleZeroSensitivities pole_zero_sensitivities_from_dm(
    std::span<const double> moments, const std::vector<std::vector<double>>& dm,
    const std::vector<bool>& active, std::size_t order);

/// One candidate for symbolic treatment.
struct SymbolCandidate {
  std::size_t element_index = 0;
  std::string name;
  /// Sum over poles of the normalized sensitivity |dp/dv * v / p|.
  double normalized_sensitivity = 0.0;
};

/// What the normalized-sensitivity ranking targets.  The paper: "Since it
/// is possible to express all behavior of a linear system in terms of the
/// poles and zeros, the pruning mechanism is easily extended to
/// performance measures such as gain, ringing, phase margin, etc."
enum class RankingMeasure {
  kPoles,   ///< sum over poles of |dp/dv * v / p|
  kZeros,   ///< sum over zeros of |dz/dv * v / z|
  kDcGain,  ///< |dm0/dv * v / m0|
};

/// Rank the differentiable elements of the circuit by normalized
/// sensitivity of the chosen measure, descending — the paper's automatic
/// mechanism for choosing symbolic elements.
std::vector<SymbolCandidate> rank_symbol_candidates(
    const circuit::Netlist& netlist, const std::string& input_source,
    circuit::NodeId output_node, std::size_t order,
    RankingMeasure measure = RankingMeasure::kPoles);

}  // namespace awe::engine
