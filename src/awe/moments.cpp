#include "awe/moments.hpp"

#include <stdexcept>

#include "health/status.hpp"

namespace awe::engine {

MomentGenerator::MomentGenerator(const circuit::Netlist& netlist, double expansion_point)
    : assembler_(netlist), s0_(expansion_point) {
  g_ = assembler_.build_g();
  c_ = assembler_.build_c();
  std::optional<linalg::SparseLu> lu;
  if (s0_ == 0.0) {
    lu = linalg::SparseLu::factor(g_);
  } else {
    // Assemble G + s0*C.
    linalg::TripletMatrix t(g_.rows(), g_.cols());
    for (std::size_t col = 0; col < g_.cols(); ++col) {
      for (std::size_t k = g_.col_ptr()[col]; k < g_.col_ptr()[col + 1]; ++k)
        t.add(g_.row_idx()[k], col, g_.values()[k]);
      for (std::size_t k = c_.col_ptr()[col]; k < c_.col_ptr()[col + 1]; ++k)
        t.add(c_.row_idx()[k], col, s0_ * c_.values()[k]);
    }
    lu = linalg::SparseLu::factor(t.compress());
  }
  if (!lu)
    throw health::FailError(
        health::FailClass::kSingularY0,
        "MomentGenerator: expansion matrix G + s0*C is singular (for s0 = 0: some "
        "node has no DC path; try a shifted expansion point)");
  lu_ = std::move(lu);
}

std::vector<linalg::Vector> MomentGenerator::state_moments(const std::string& input_source,
                                                           std::size_t count) const {
  std::vector<linalg::Vector> xs;
  if (count == 0) return xs;
  xs.reserve(count);
  linalg::Vector x = lu_->solve(assembler_.rhs(input_source, 1.0));
  xs.push_back(x);
  for (std::size_t k = 1; k < count; ++k) {
    linalg::Vector rhs = c_.multiply(xs.back());
    for (double& v : rhs) v = -v;
    lu_->solve_in_place(rhs);
    xs.push_back(std::move(rhs));
  }
  return xs;
}

std::vector<double> MomentGenerator::transfer_moments(const std::string& input_source,
                                                      circuit::NodeId output_node,
                                                      std::size_t count) const {
  const std::size_t out = assembler_.layout().node_unknown(output_node);
  std::vector<double> moments;
  moments.reserve(count);
  // Stream the recursion without storing all state vectors.
  if (count == 0) return moments;
  linalg::Vector x = lu_->solve(assembler_.rhs(input_source, 1.0));
  moments.push_back(x[out]);
  for (std::size_t k = 1; k < count; ++k) {
    linalg::Vector rhs = c_.multiply(x);
    for (double& v : rhs) v = -v;
    lu_->solve_in_place(rhs);
    x = std::move(rhs);
    moments.push_back(x[out]);
  }
  return moments;
}

std::vector<linalg::Vector> MomentGenerator::adjoint_moments(circuit::NodeId output_node,
                                                             std::size_t count) const {
  std::vector<linalg::Vector> zs;
  if (count == 0) return zs;
  zs.reserve(count);
  linalg::Vector z = lu_->solve_transposed(assembler_.output_selector(output_node));
  zs.push_back(z);
  for (std::size_t k = 1; k < count; ++k) {
    linalg::Vector rhs = c_.multiply_transposed(zs.back());
    for (double& v : rhs) v = -v;
    lu_->solve_transposed_in_place(rhs);
    zs.push_back(std::move(rhs));
  }
  return zs;
}

}  // namespace awe::engine
