#include "awe/ac.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/mna.hpp"
#include "linalg/sparse_lu.hpp"

namespace awe::engine {

AcAnalysis::AcAnalysis(const circuit::Netlist& netlist, std::string input_source,
                       circuit::NodeId output_node)
    : assembler_(netlist) {
  g_ = assembler_.build_g();
  c_ = assembler_.build_c();
  rhs_ = assembler_.rhs(input_source, 1.0);
  out_index_ = assembler_.layout().node_unknown(output_node);
}

std::complex<double> AcAnalysis::transfer(double freq_hz) const {
  const std::size_t n = g_.rows();
  const double w = 2.0 * M_PI * freq_hz;

  // Augmented real system [[G, -wC], [wC, G]].
  linalg::TripletMatrix t(2 * n, 2 * n);
  for (std::size_t col = 0; col < n; ++col) {
    for (std::size_t k = g_.col_ptr()[col]; k < g_.col_ptr()[col + 1]; ++k) {
      const std::size_t r = g_.row_idx()[k];
      const double v = g_.values()[k];
      t.add(r, col, v);
      t.add(n + r, n + col, v);
    }
    for (std::size_t k = c_.col_ptr()[col]; k < c_.col_ptr()[col + 1]; ++k) {
      const std::size_t r = c_.row_idx()[k];
      const double v = w * c_.values()[k];
      if (v == 0.0) continue;
      t.add(r, n + col, -v);
      t.add(n + r, col, v);
    }
  }
  auto lu = linalg::SparseLu::factor(t.compress());
  if (!lu) throw std::runtime_error("AcAnalysis: singular system at f = " +
                                    std::to_string(freq_hz));
  linalg::Vector b(2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) b[i] = rhs_[i];
  const auto x = lu->solve(std::move(b));
  return {x[out_index_], x[n + out_index_]};
}

std::vector<AcPoint> AcAnalysis::sweep(std::span<const double> freqs_hz) const {
  std::vector<AcPoint> pts;
  pts.reserve(freqs_hz.size());
  for (const double f : freqs_hz) pts.push_back({f, transfer(f)});
  return pts;
}

std::vector<double> AcAnalysis::log_space(double f_start_hz, double f_stop_hz,
                                          std::size_t points) {
  if (points == 0) return {};
  if (f_start_hz <= 0.0 || f_stop_hz < f_start_hz)
    throw std::invalid_argument("log_space: need 0 < f_start <= f_stop");
  std::vector<double> f;
  f.reserve(points);
  if (points == 1) {
    f.push_back(f_start_hz);
    return f;
  }
  const double ratio = std::log(f_stop_hz / f_start_hz);
  for (std::size_t i = 0; i < points; ++i)
    f.push_back(f_start_hz * std::exp(ratio * static_cast<double>(i) /
                                      static_cast<double>(points - 1)));
  return f;
}

}  // namespace awe::engine
