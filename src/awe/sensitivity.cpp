#include "awe/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "awe/pade.hpp"
#include "linalg/lu.hpp"
#include "linalg/polyroots.hpp"

namespace awe::engine {
namespace {

bool value_differentiable(circuit::ElementKind kind) {
  using circuit::ElementKind;
  switch (kind) {
    case ElementKind::kResistor:
    case ElementKind::kConductance:
    case ElementKind::kCapacitor:
    case ElementKind::kInductor:
    case ElementKind::kVccs:
      return true;
    default:
      return false;
  }
}

/// z^T * M * x where M is given as triplets.
double bilinear(const linalg::TripletMatrix& m, const linalg::Vector& z,
                const linalg::Vector& x) {
  const auto sm = m.compress();
  double s = 0.0;
  for (std::size_t c = 0; c < sm.cols(); ++c)
    for (std::size_t k = sm.col_ptr()[c]; k < sm.col_ptr()[c + 1]; ++k)
      s += z[sm.row_idx()[k]] * sm.values()[k] * x[c];
  return s;
}

}  // namespace

MomentSensitivities moment_sensitivities(const MomentGenerator& gen,
                                         const std::string& input_source,
                                         circuit::NodeId output_node, std::size_t count) {
  const auto& assembler = gen.assembler();
  const auto& netlist = assembler.netlist();
  const std::size_t dim = assembler.layout().dim();
  const std::size_t ne = netlist.elements().size();

  const auto xs = gen.state_moments(input_source, count);
  const auto zs = gen.adjoint_moments(output_node, count);

  MomentSensitivities out;
  out.dm.assign(count, std::vector<double>(ne, 0.0));
  out.differentiable.assign(ne, false);

  for (std::size_t e = 0; e < ne; ++e) {
    if (!value_differentiable(netlist.elements()[e].kind)) continue;
    out.differentiable[e] = true;
    linalg::TripletMatrix dg(dim, dim), dc(dim, dim);
    assembler.stamp_value_derivative(e, dg, dc);
    const bool has_dg = dg.entry_count() > 0;
    const bool has_dc = dc.entry_count() > 0;
    // Precompute the bilinear forms z_i^T dG x_j and z_i^T dC x_j lazily:
    // each is O(nnz(stamp)) so we just evaluate on demand.
    for (std::size_t k = 0; k < count; ++k) {
      double s = 0.0;
      if (has_dg)
        for (std::size_t j = 0; j <= k; ++j) s -= bilinear(dg, zs[k - j], xs[j]);
      if (has_dc && k >= 1)
        for (std::size_t j = 0; j <= k - 1; ++j) s -= bilinear(dc, zs[k - 1 - j], xs[j]);
      out.dm[k][e] = s;
    }
  }
  return out;
}

PoleZeroSensitivities pole_zero_sensitivities(std::span<const double> moments,
                                              const MomentSensitivities& ms,
                                              std::size_t order) {
  return pole_zero_sensitivities_from_dm(moments, ms.dm, ms.differentiable, order);
}

PoleZeroSensitivities pole_zero_sensitivities_from_dm(
    std::span<const double> moments, const std::vector<std::vector<double>>& dm,
    const std::vector<bool>& active, std::size_t order) {
  const std::size_t q = order;
  if (moments.size() < 2 * q || dm.size() < 2 * q)
    throw std::invalid_argument("pole_zero_sensitivities: need 2q moments + sensitivities");
  const std::size_t ne = dm.empty() ? 0 : dm[0].size();

  // Unscaled Hankel system:  sum_j b_j m_{k-j} = -m_k,  k = q..2q-1.
  linalg::Matrix h(q, q);
  linalg::Vector rhs(q);
  for (std::size_t row = 0; row < q; ++row) {
    const std::size_t k = q + row;
    for (std::size_t j = 1; j <= q; ++j) h(row, j - 1) = moments[k - j];
    rhs[row] = -moments[k];
  }
  auto lu = linalg::LuFactorization::factor(h);
  if (!lu) throw std::runtime_error("pole_zero_sensitivities: singular Hankel system");
  const linalg::Vector b = lu->solve(rhs);

  // Denominator D(s) = 1 + sum b_j s^j and numerator coefficients.
  std::vector<double> den(q + 1);
  den[0] = 1.0;
  for (std::size_t j = 1; j <= q; ++j) den[j] = b[j - 1];
  std::vector<double> num(q);
  for (std::size_t k = 0; k < q; ++k) {
    double s = moments[k];
    for (std::size_t j = 1; j <= k; ++j) s += b[j - 1] * moments[k - j];
    num[k] = s;
  }

  PoleZeroSensitivities out;
  out.poles = linalg::poly_roots(den);
  out.zeros = num.size() >= 2 ? linalg::poly_roots(num) : linalg::CVector{};

  // db/dv_e: differentiate the Hankel rows:
  //   sum_j db_j m_{k-j} = -dm_k - sum_j b_j dm_{k-j}.
  std::vector<linalg::Vector> db(ne, linalg::Vector(q, 0.0));
  for (std::size_t e = 0; e < ne; ++e) {
    if (!active[e]) continue;
    linalg::Vector r(q);
    for (std::size_t row = 0; row < q; ++row) {
      const std::size_t k = q + row;
      double s = -dm[k][e];
      for (std::size_t j = 1; j <= q; ++j) s -= b[j - 1] * dm[k - j][e];
      r[row] = s;
    }
    db[e] = lu->solve(std::move(r));
  }

  // Pole sensitivity: D(p_i; b) = 0 =>
  //   dp_i/dv = -(sum_j db_j p_i^j) / D'(p_i).
  out.dpole.assign(out.poles.size(), linalg::CVector(ne, {0.0, 0.0}));
  for (std::size_t i = 0; i < out.poles.size(); ++i) {
    const auto p = out.poles[i];
    const auto dd = linalg::poly_eval_derivative(den, p);
    if (std::abs(dd) == 0.0) continue;  // repeated pole: sensitivity undefined
    for (std::size_t e = 0; e < ne; ++e) {
      if (!active[e]) continue;
      std::complex<double> s{0.0, 0.0};
      std::complex<double> pw = p;
      for (std::size_t j = 1; j <= q; ++j) {
        s += db[e][j - 1] * pw;
        pw *= p;
      }
      out.dpole[i][e] = -s / dd;
    }
  }

  // Zero sensitivity: numerator a_k = m_k + sum_j b_j m_{k-j}, so
  //   da_k = dm_k + sum_j (db_j m_{k-j} + b_j dm_{k-j});
  //   dz_i/dv = -(sum_k da_k z_i^k) / N'(z_i).
  out.dzero.assign(out.zeros.size(), linalg::CVector(ne, {0.0, 0.0}));
  for (std::size_t i = 0; i < out.zeros.size(); ++i) {
    const auto z = out.zeros[i];
    const auto dn = linalg::poly_eval_derivative(num, z);
    if (std::abs(dn) == 0.0) continue;
    for (std::size_t e = 0; e < ne; ++e) {
      if (!active[e]) continue;
      std::complex<double> s{0.0, 0.0};
      std::complex<double> pw{1.0, 0.0};
      for (std::size_t k = 0; k < q; ++k) {
        double da = dm[k][e];
        for (std::size_t j = 1; j <= k; ++j)
          da += db[e][j - 1] * moments[k - j] + b[j - 1] * dm[k - j][e];
        s += da * pw;
        pw *= z;
      }
      out.dzero[i][e] = -s / dn;
    }
  }
  return out;
}

std::vector<SymbolCandidate> rank_symbol_candidates(const circuit::Netlist& netlist,
                                                    const std::string& input_source,
                                                    circuit::NodeId output_node,
                                                    std::size_t order,
                                                    RankingMeasure measure) {
  MomentGenerator gen(netlist);
  const auto moments = gen.transfer_moments(input_source, output_node, 2 * order);
  const auto ms = moment_sensitivities(gen, input_source, output_node, 2 * order);
  const auto pz = pole_zero_sensitivities(moments, ms, order);

  std::vector<SymbolCandidate> ranked;
  for (std::size_t e = 0; e < netlist.elements().size(); ++e) {
    if (!ms.differentiable[e]) continue;
    const double value = netlist.elements()[e].value;
    double score = 0.0;
    switch (measure) {
      case RankingMeasure::kPoles:
        for (std::size_t i = 0; i < pz.poles.size(); ++i) {
          const double pmag = std::abs(pz.poles[i]);
          if (pmag == 0.0) continue;
          score += std::abs(pz.dpole[i][e]) * std::abs(value) / pmag;
        }
        break;
      case RankingMeasure::kZeros:
        for (std::size_t i = 0; i < pz.zeros.size(); ++i) {
          const double zmag = std::abs(pz.zeros[i]);
          if (zmag == 0.0) continue;
          score += std::abs(pz.dzero[i][e]) * std::abs(value) / zmag;
        }
        break;
      case RankingMeasure::kDcGain:
        if (moments[0] != 0.0)
          score = std::abs(ms.dm[0][e]) * std::abs(value) / std::abs(moments[0]);
        break;
    }
    ranked.push_back({e, netlist.elements()[e].name, score});
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.normalized_sensitivity > b.normalized_sensitivity;
  });
  return ranked;
}

}  // namespace awe::engine
