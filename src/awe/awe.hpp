// Top-level numeric AWE driver.
//
// One call runs the full pipeline of Pillage & Rohrer's Asymptotic
// Waveform Evaluation on a netlist: MNA assembly, one sparse LU of the DC
// matrix, 2q moment solves, Padé, pole/residue extraction.  This is the
// "full AWE analysis" whose per-iteration cost AWEsymbolic's compiled
// models are benchmarked against (paper Table 1).
#pragma once

#include <string>

#include "awe/moments.hpp"
#include "awe/rom.hpp"
#include "circuit/netlist.hpp"

namespace awe::engine {

struct AweOptions {
  std::size_t order = 2;
  bool enforce_stability = true;
  bool allow_order_fallback = true;
  /// Real expansion point s0 for the moment series (0 = classic Maclaurin
  /// about DC).  A positive s0 rescues circuits with singular G and can
  /// improve accuracy away from DC.
  double expansion_point = 0.0;
};

/// Reduced-order model of the transfer from `input_source` (unit
/// amplitude) to v(`output_node`).
ReducedOrderModel run_awe(const circuit::Netlist& netlist, const std::string& input_source,
                          circuit::NodeId output_node, const AweOptions& opts = {});

/// Convenience overload resolving the output node by name.
ReducedOrderModel run_awe(const circuit::Netlist& netlist, const std::string& input_source,
                          const std::string& output_node, const AweOptions& opts = {});

}  // namespace awe::engine
