#include "awe/pade.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "health/status.hpp"
#include "linalg/lu.hpp"
#include "linalg/polyroots.hpp"

namespace awe::engine {
namespace {

/// Pick a frequency scale w0 so the scaled moments mu_k = m_k * w0^k have
/// comparable magnitudes.  The ratio of consecutive moment magnitudes
/// estimates the dominant time constant.
double moment_scale(std::span<const double> m) {
  double ratio_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t k = 0; k + 1 < m.size(); ++k) {
    if (m[k] != 0.0 && m[k + 1] != 0.0) {
      ratio_sum += std::log(std::abs(m[k] / m[k + 1]));
      ++n;
    }
  }
  if (n == 0) return 1.0;
  return std::exp(ratio_sum / static_cast<double>(n));
}

}  // namespace

PadeResult pade_from_moments(std::span<const double> moments, std::size_t order) {
  const std::size_t q = order;
  if (q == 0) throw std::invalid_argument("pade: order must be >= 1");
  if (moments.size() < 2 * q)
    throw std::invalid_argument("pade: need 2q moments for an order-q approximant");

  PadeResult result;
  result.order = q;
  result.scale = moment_scale(moments.subspan(0, 2 * q));
  const double w0 = result.scale;

  // Scaled moments mu_k = m_k * w0^k correspond to s_hat = s / w0.
  std::vector<double> mu(2 * q);
  double pw = 1.0;
  for (std::size_t k = 0; k < 2 * q; ++k) {
    mu[k] = moments[k] * pw;
    pw *= w0;
  }

  // Hankel system for denominator coefficients (ascending b_1..b_q):
  //   sum_{j=1..q} b_j mu_{k-j} = -mu_k   for k = q..2q-1.
  linalg::Matrix h(q, q);
  linalg::Vector rhs(q);
  for (std::size_t row = 0; row < q; ++row) {
    const std::size_t k = q + row;
    for (std::size_t j = 1; j <= q; ++j) h(row, j - 1) = mu[k - j];
    rhs[row] = -mu[k];
  }
  auto lu = linalg::LuFactorization::factor(std::move(h));
  if (!lu)
    throw health::FailError(
        health::FailClass::kHankelIllConditioned,
        "pade: singular Hankel system (moment degeneracy; try a lower order)");
  const linalg::Vector b = lu->solve(std::move(rhs));

  // Numerator by matching the first q moments:
  //   a_k = mu_k + sum_{j=1..k} b_j mu_{k-j},  k = 0..q-1.
  std::vector<double> a(q);
  for (std::size_t k = 0; k < q; ++k) {
    double s = mu[k];
    for (std::size_t j = 1; j <= k; ++j) s += b[j - 1] * mu[k - j];
    a[k] = s;
  }

  // Unscale: coefficient of s^k divides by w0^k.
  result.numerator.resize(q);
  result.denominator.resize(q + 1);
  result.denominator[0] = 1.0;
  pw = 1.0;
  for (std::size_t k = 0; k < q; ++k) {
    result.numerator[k] = a[k] / pw;
    result.denominator[k + 1] = b[k] / (pw * w0);
    pw *= w0;
  }

  result.poles = linalg::poly_roots(result.denominator);
  result.residues.resize(result.poles.size());
  for (std::size_t i = 0; i < result.poles.size(); ++i) {
    const auto p = result.poles[i];
    const auto num = linalg::poly_eval(result.numerator, p);
    const auto dden = linalg::poly_eval_derivative(result.denominator, p);
    if (std::abs(dden) == 0.0)
      throw health::FailError(health::FailClass::kHankelIllConditioned,
                              "pade: repeated pole; residue expansion invalid");
    result.residues[i] = num / dden;
  }
  return result;
}

std::size_t pade_solve_batch(std::span<const double> moments, std::size_t stride,
                             std::size_t count, std::size_t order, bool allow_fallback,
                             std::span<const unsigned char> ok,
                             std::span<PadeResult> results) {
  if (order == 0) throw std::invalid_argument("pade_solve_batch: order must be >= 1");
  const std::size_t nm = 2 * order;
  if (stride < count)
    throw std::invalid_argument("pade_solve_batch: stride smaller than count");
  if (count > 0 && moments.size() < (nm - 1) * stride + count)
    throw std::invalid_argument("pade_solve_batch: moments span too small");
  if (ok.size() < count || results.size() < count)
    throw std::invalid_argument("pade_solve_batch: ok/results span too small");

  std::vector<double> lane(nm);  // reused AoS gather of one lane
  std::size_t solved = 0;
  for (std::size_t p = 0; p < count; ++p) {
    results[p] = PadeResult{};  // order 0 == not solved here
    if (!ok[p]) continue;
    bool finite = true;
    for (std::size_t k = 0; k < nm; ++k) {
      lane[k] = moments[k * stride + p];
      finite = finite && std::isfinite(lane[k]);
    }
    if (!finite) continue;  // the eval ladder owns non-finite lanes
    std::size_t q = order;
    if (allow_fallback) {
      const std::size_t feasible = max_feasible_order(lane);
      if (feasible == 0) continue;  // scalar re-run classifies kOrderCollapse
      q = std::min(q, feasible);
    }
    try {
      results[p] = pade_from_moments(lane, q);
      ++solved;
    } catch (const health::FailError&) {
      results[p] = PadeResult{};  // scalar re-run classifies identically
    }
  }
  return solved;
}

std::size_t max_feasible_order(std::span<const double> moments) {
  std::size_t best = 0;
  for (std::size_t q = 1; 2 * q <= moments.size(); ++q) {
    const double w0 = moment_scale(moments.subspan(0, 2 * q));
    std::vector<double> mu(2 * q);
    double pw = 1.0;
    for (std::size_t k = 0; k < 2 * q; ++k) {
      mu[k] = moments[k] * pw;
      pw *= w0;
    }
    linalg::Matrix h(q, q);
    for (std::size_t row = 0; row < q; ++row)
      for (std::size_t j = 1; j <= q; ++j) h(row, j - 1) = mu[q + row - j];
    if (linalg::LuFactorization::factor(std::move(h), 1e-10)) best = q;
  }
  return best;
}

std::complex<double> evaluate_pade(const PadeResult& pade, std::complex<double> s) {
  return linalg::poly_eval(pade.numerator, s) / linalg::poly_eval(pade.denominator, s);
}

}  // namespace awe::engine
