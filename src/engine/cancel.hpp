// Cooperative cancellation for batched evaluation (DESIGN.md §16).
//
// A serving path cannot afford a sweep that outlives its request: a
// timed-out client has already been answered (or evicted), so every cycle
// spent finishing its points is a cycle stolen from live requests.  A
// CancelToken is the engine-side half of a request deadline — the sweep
// engine polls it once per SoA batch (width points, so the check cost is
// amortized to nothing) and, once it reports cancelled, marks every
// not-yet-evaluated point FailClass::kDeadline and returns.  Points that
// finished before the cancellation keep their results: the caller gets a
// partial, honestly-accounted SweepResult, never a torn one.
//
// Cancellation is latching and monotone: once cancelled() has returned
// true it returns true forever, from any thread.  Three triggers compose
// (any one suffices): an explicit cancel() call, a steady-clock deadline,
// and a check-count trigger (cancel_after_checks) that gives tests a
// deterministic "expire exactly mid-sweep" without wall-clock races.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace awe::sweep {

class CancelToken {
 public:
  CancelToken() = default;

  /// Token that expires at `deadline` (steady clock).
  explicit CancelToken(std::chrono::steady_clock::time_point deadline)
      : deadline_ns_(deadline.time_since_epoch().count()) {}

  /// Token that expires `budget` from now (steady clock).  Guaranteed
  /// prvalue elision — CancelToken itself is neither copyable nor movable
  /// (it holds atomics that concurrent pollers may already be watching).
  static CancelToken after(std::chrono::nanoseconds budget) {
    return CancelToken(std::chrono::steady_clock::now() + budget);
  }

  void set_deadline(std::chrono::steady_clock::time_point tp) {
    deadline_ns_.store(tp.time_since_epoch().count(), std::memory_order_relaxed);
  }

  /// Deterministic testing trigger: cancelled() latches true on the n-th
  /// call (1-based, counted across all threads).
  void cancel_after_checks(std::uint64_t n) {
    trigger_checks_.store(n, std::memory_order_relaxed);
  }

  void cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    const std::uint64_t trigger = trigger_checks_.load(std::memory_order_relaxed);
    if (trigger != 0 &&
        checks_.fetch_add(1, std::memory_order_relaxed) + 1 >= trigger) {
      cancelled_.store(true, std::memory_order_release);
      return true;
    }
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >= d) {
      cancelled_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  ///< steady-epoch ns; 0 = none
  std::atomic<std::uint64_t> trigger_checks_{0};
  mutable std::atomic<std::uint64_t> checks_{0};
};

}  // namespace awe::sweep
