// Static-chunked thread pool for the sweep engine.
//
// Deliberately not work-stealing: parallel_chunks() splits [0, n) into one
// contiguous chunk per worker, fixed by (n, size()) alone, so a sweep's
// point-to-worker assignment is reproducible run to run.  Combined with
// per-worker workspaces and disjoint output slots this makes every sweep
// result bit-identical regardless of thread count — the batched model
// evaluation is embarrassingly parallel with near-uniform per-point cost,
// so static chunking also loses nothing to load imbalance.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace awe::sweep {

class ThreadPool {
 public:
  /// `threads` total workers including the calling thread; 0 means
  /// std::thread::hardware_concurrency().  With threads == 1 no OS thread
  /// is spawned and parallel_chunks() runs inline on the caller.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread.
  std::size_t size() const { return workers_.size() + 1; }

  /// fn(worker, begin, end): worker w processes the contiguous index range
  /// [begin, end) of [0, n); worker indices are 0..size()-1 and the caller
  /// participates as the last worker.  Blocks until every chunk finished.
  /// The first exception thrown by any chunk is rethrown on the caller
  /// after all workers have drained; the pool stays usable afterwards.
  using ChunkFn = std::function<void(std::size_t worker, std::size_t begin, std::size_t end)>;
  void parallel_chunks(std::size_t n, const ChunkFn& fn);

 private:
  void worker_loop(std::size_t worker_index);
  /// Chunk [begin, end) of worker w: the canonical balanced split
  /// n*w/size() .. n*(w+1)/size().
  std::pair<std::size_t, std::size_t> chunk(std::size_t n, std::size_t w) const;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const ChunkFn* job_ = nullptr;   ///< current job, valid while epoch matches
  std::size_t job_n_ = 0;
  std::uint64_t epoch_ = 0;        ///< bumped per parallel_chunks() call
  std::size_t pending_ = 0;        ///< pool workers still running the job
  std::exception_ptr error_;       ///< first failure among pool workers
  bool stop_ = false;
};

}  // namespace awe::sweep
