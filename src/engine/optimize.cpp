#include "engine/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace awe::opt {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Measure + gradient from a MomentsAndGradients evaluation.  All three
/// measures are smooth functions of (m_0, m_1) wherever they are defined;
/// division by a vanishing m_0/m_1 surfaces as inf/NaN and is handled by
/// the callers' residual checks.
MeasureValue measure_from(const core::CompiledModel::MomentsAndGradients& mg,
                          Measure measure, std::size_t nsym) {
  MeasureValue out;
  out.gradient.assign(nsym, 0.0);
  const double m0 = mg.moments.at(0);
  const double m1 = mg.moments.at(1);
  switch (measure) {
    case Measure::kDcGain:
      out.value = m0;
      for (std::size_t i = 0; i < nsym; ++i) out.gradient[i] = mg.dm[0][i];
      break;
    case Measure::kElmoreDelay:
      out.value = -m1 / m0;
      for (std::size_t i = 0; i < nsym; ++i)
        out.gradient[i] = -mg.dm[1][i] / m0 + m1 * mg.dm[0][i] / (m0 * m0);
      break;
    case Measure::kPole1Hz: {
      const double r = m0 / m1;  // first-order pole magnitude estimate
      out.value = std::abs(r) / kTwoPi;
      const double sign = r < 0.0 ? -1.0 : 1.0;
      for (std::size_t i = 0; i < nsym; ++i) {
        const double dr = mg.dm[0][i] / m1 - m0 * mg.dm[1][i] / (m1 * m1);
        out.gradient[i] = sign * dr / kTwoPi;
      }
      break;
    }
  }
  return out;
}

}  // namespace

const char* to_string(Measure m) {
  switch (m) {
    case Measure::kDcGain: return "dcgain";
    case Measure::kElmoreDelay: return "elmore";
    case Measure::kPole1Hz: return "pole1";
  }
  return "?";
}

bool parse_measure(const std::string& name, Measure& out) {
  if (name == "dcgain") out = Measure::kDcGain;
  else if (name == "elmore") out = Measure::kElmoreDelay;
  else if (name == "pole1") out = Measure::kPole1Hz;
  else return false;
  return true;
}

MeasureValue eval_measure(const core::CompiledModel& model, Measure measure,
                          std::span<const double> x) {
  return measure_from(model.moments_and_gradients(x), measure, model.symbol_count());
}

RecenterResult recenter_nominal(const core::CompiledModel& model,
                                const RecenterOptions& opts, std::span<const double> x0) {
  const std::size_t nsym = model.symbol_count();
  if (x0.size() != nsym)
    throw std::invalid_argument("recenter_nominal: one starting value per symbol");
  for (const double v : x0)
    if (!(v > 0.0))
      throw std::invalid_argument("recenter_nominal: starting values must be positive");

  RecenterResult res;
  res.x.assign(x0.begin(), x0.end());

  const auto residual_of = [&](double value) {
    const double scale = std::max(std::abs(opts.target), std::abs(value));
    return scale > 0.0 ? std::abs(value - opts.target) / scale
                       : std::abs(value - opts.target);
  };

  MeasureValue mv = eval_measure(model, opts.measure, res.x);
  res.value = mv.value;
  res.residual = residual_of(mv.value);
  const double max_log_step = std::log1p(opts.max_step);

  for (std::size_t it = 0; it < opts.max_iters; ++it) {
    if (!std::isfinite(res.residual)) break;
    if (res.residual <= opts.tol) {
      res.converged = true;
      break;
    }
    // Log-space gradient: u_i = ln x_i, df/du_i = g_i * x_i.
    std::vector<double> gu(nsym);
    double gnorm2 = 0.0;
    for (std::size_t i = 0; i < nsym; ++i) {
      gu[i] = mv.gradient[i] * res.x[i];
      gnorm2 += gu[i] * gu[i];
    }
    if (!(gnorm2 > 0.0) || !std::isfinite(gnorm2)) break;  // flat or broken

    // Gauss-Newton step for the scalar residual f(x) - target, clamped to
    // a relative box so one iteration never jumps further than max_step.
    const double r = mv.value - opts.target;
    std::vector<double> du(nsym);
    for (std::size_t i = 0; i < nsym; ++i) {
      du[i] = -r * gu[i] / gnorm2;
      du[i] = std::clamp(du[i], -max_log_step, max_log_step);
    }

    // Backtracking: halve the step until the residual actually shrinks.
    double scale = 1.0;
    bool improved = false;
    std::vector<double> trial(nsym);
    MeasureValue trial_mv;
    for (int bt = 0; bt < 8; ++bt, scale *= 0.5) {
      for (std::size_t i = 0; i < nsym; ++i)
        trial[i] = res.x[i] * std::exp(scale * du[i]);
      trial_mv = eval_measure(model, opts.measure, trial);
      const double trial_res = residual_of(trial_mv.value);
      if (std::isfinite(trial_res) && trial_res < res.residual) {
        res.x = trial;
        mv = std::move(trial_mv);
        res.value = mv.value;
        res.residual = trial_res;
        improved = true;
        break;
      }
    }
    ++res.iterations;
    res.residual_history.push_back(res.residual);
    if (!improved) break;  // stalled: every backtracked step made it worse
  }
  if (res.residual <= opts.tol) res.converged = true;
  return res;
}

CornerSearchResult worst_case_corner(const core::CompiledModel& model,
                                     const CornerSearchOptions& opts) {
  const std::size_t nsym = model.symbol_count();
  if (opts.lo.size() != nsym || opts.hi.size() != nsym)
    throw std::invalid_argument("worst_case_corner: one lo/hi pair per symbol");
  for (std::size_t i = 0; i < nsym; ++i)
    if (!(opts.lo[i] <= opts.hi[i]))
      throw std::invalid_argument("worst_case_corner: lo must be <= hi");

  CornerSearchResult res;
  // Start at the box midpoint: its gradient signs pick the first corner.
  res.corner.resize(nsym);
  std::vector<double> x(nsym);
  for (std::size_t i = 0; i < nsym; ++i) x[i] = 0.5 * (opts.lo[i] + opts.hi[i]);

  const double dir = opts.maximize ? 1.0 : -1.0;
  for (std::size_t it = 0; it < opts.max_iters; ++it) {
    ++res.iterations;
    const MeasureValue mv = eval_measure(model, opts.measure, x);
    bool moved = false;
    for (std::size_t i = 0; i < nsym; ++i) {
      // Move toward the face the (signed) gradient points at; a zero
      // gradient keeps the symbol where it is (deterministic tie-break).
      const double g = dir * mv.gradient[i];
      const double next = g > 0.0 ? opts.hi[i] : g < 0.0 ? opts.lo[i] : x[i];
      if (next != x[i]) {
        x[i] = next;
        moved = true;
      }
    }
    if (!moved) {
      res.converged = true;
      break;
    }
  }
  res.corner = x;
  res.value = eval_measure(model, opts.measure, x).value;
  return res;
}

}  // namespace awe::opt
