#include "engine/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <random>
#include <stdexcept>

namespace awe::sweep {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

engine::RomOptions rom_options(const core::ModelOptions& m) {
  engine::RomOptions r;
  r.order = m.order;
  r.enforce_stability = m.enforce_stability;
  r.allow_order_fallback = m.allow_order_fallback;
  return r;
}

RomSamples make_rom_samples(std::size_t n, std::size_t max_order) {
  RomSamples rs;
  rs.max_order = max_order;
  rs.order.assign(n, 0);
  rs.poles.assign(n * max_order, {kNaN, kNaN});
  rs.residues.assign(n * max_order, {kNaN, kNaN});
  rs.dc_gain.assign(n, kNaN);
  return rs;
}

/// Fit point p's ROM from its moment lane and record it.  A failed Padé
/// fit leaves order 0 / NaN samples and a 0 pass flag.
void fit_point_rom(const engine::RomOptions& ropts, std::span<const double> lane_moments,
                   std::size_t p, RomSamples& rs,
                   const std::function<bool(const engine::ReducedOrderModel&)>& pred,
                   std::vector<std::uint8_t>* pass) {
  try {
    const auto rom = engine::ReducedOrderModel::from_moments(lane_moments, ropts);
    const std::size_t q = std::min(rom.order(), rs.max_order);
    rs.order[p] = static_cast<std::uint8_t>(q);
    for (std::size_t j = 0; j < q; ++j) {
      rs.poles[p * rs.max_order + j] = rom.poles()[j];
      rs.residues[p * rs.max_order + j] = rom.residues()[j];
    }
    rs.dc_gain[p] = rom.dc_gain();
    if (pred) (*pass)[p] = pred(rom) ? 1 : 0;
  } catch (...) {
    // Point stays marked as an unfitted sample.
  }
}

/// Two-pass min/max/mean/stddev over the finite values of ok points.
Stats stats_over(const double* vals, std::size_t n, const std::vector<std::uint8_t>& ok) {
  Stats s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    if (!ok.empty() && !ok[p]) continue;
    const double v = vals[p];
    if (!std::isfinite(v)) continue;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
    ++s.count;
  }
  if (s.count == 0) {
    s.min = s.max = s.mean = s.stddev = kNaN;
    return s;
  }
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    if (!ok.empty() && !ok[p]) continue;
    const double v = vals[p];
    if (!std::isfinite(v)) continue;
    sq += (v - s.mean) * (v - s.mean);
  }
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

/// Serial post-join reductions shared by both run_sweep overloads.
void finalize_result(SweepResult& res) {
  const std::size_t n = res.num_points;
  res.moment_stats.resize(res.num_moments);
  for (std::size_t k = 0; k < res.num_moments; ++k)
    res.moment_stats[k] = stats_over(res.moments.data() + k * n, n, res.ok);
  res.ok_count = 0;
  for (const std::uint8_t f : res.ok) res.ok_count += f;
  res.pass_count = 0;
  for (const std::uint8_t f : res.pass) res.pass_count += f;
  if (res.rom) res.dc_gain_stats = stats_over(res.rom->dc_gain.data(), n, res.ok);
}

}  // namespace

SweepResult run_sweep(const core::CompiledModel& model, std::vector<double> points,
                      std::size_t num_points, const SweepOptions& opts) {
  const std::size_t nsym = model.symbol_count();
  const std::size_t nm = model.moment_count();
  if (points.size() != nsym * num_points)
    throw std::invalid_argument("run_sweep: points.size() must be symbol_count*num_points");

  SweepResult res;
  res.num_points = num_points;
  res.num_symbols = nsym;
  res.num_moments = nm;
  res.points = std::move(points);
  res.moments.assign(nm * num_points, 0.0);
  res.ok.assign(num_points, 1);
  const bool need_rom = opts.with_rom || static_cast<bool>(opts.pass_predicate);
  if (need_rom) res.rom = make_rom_samples(num_points, model.order());
  if (opts.pass_predicate) res.pass.assign(num_points, 0);
  if (num_points == 0) {
    finalize_result(res);
    return res;
  }

  std::optional<ThreadPool> local;
  ThreadPool* pool = opts.pool;
  if (!pool) pool = &local.emplace(opts.threads);
  const std::size_t width = std::max<std::size_t>(1, opts.batch_width);
  const engine::RomOptions ropts = rom_options(model.options());
  const std::size_t n = num_points;

  pool->parallel_chunks(n, [&](std::size_t, std::size_t begin, std::size_t end) {
    core::BatchWorkspace ws = model.make_batch_workspace(width);
    std::vector<double> lane(nm);
    for (std::size_t b = begin; b < end; b += width) {
      const std::size_t w = std::min(width, end - b);
      model.moments_batch(
          std::span<const double>(res.points.data() + b, res.points.size() - b), n, w, ws,
          std::span<double>(res.moments.data() + b, res.moments.size() - b), n,
          std::span<unsigned char>(res.ok.data() + b, w), opts.mode);
      if (!need_rom) continue;
      for (std::size_t p = b; p < b + w; ++p) {
        if (!res.ok[p]) continue;
        for (std::size_t k = 0; k < nm; ++k) lane[k] = res.moments[k * n + p];
        fit_point_rom(ropts, lane, p, *res.rom, opts.pass_predicate,
                      res.pass.empty() ? nullptr : &res.pass);
      }
    }
  });

  finalize_result(res);
  return res;
}

std::vector<SweepResult> run_sweep(const core::MultiOutputModel& model,
                                   std::vector<double> points, std::size_t num_points,
                                   const SweepOptions& opts) {
  const std::size_t nsym = model.symbol_count();
  const std::size_t nm = model.moment_count();
  const std::size_t nout = model.output_count();
  if (points.size() != nsym * num_points)
    throw std::invalid_argument("run_sweep: points.size() must be symbol_count*num_points");
  const std::size_t n = num_points;

  std::vector<SweepResult> results(nout);
  const bool need_rom = opts.with_rom || static_cast<bool>(opts.pass_predicate);
  for (std::size_t o = 0; o < nout; ++o) {
    SweepResult& r = results[o];
    r.num_points = n;
    r.num_symbols = nsym;
    r.num_moments = nm;
    r.points = points;
    r.ok.assign(n, 1);
    if (need_rom) r.rom = make_rom_samples(n, model.order());
    if (opts.pass_predicate) r.pass.assign(n, 0);
  }
  // All outputs' moments in one SoA block so a single shared program pass
  // fills every output; rows are handed to the per-output results after.
  std::vector<double> all(nout * nm * n, 0.0);
  std::vector<std::uint8_t> ok(n, 1);

  if (n > 0) {
    std::optional<ThreadPool> local;
    ThreadPool* pool = opts.pool;
    if (!pool) pool = &local.emplace(opts.threads);
    const std::size_t width = std::max<std::size_t>(1, opts.batch_width);
    const engine::RomOptions ropts = rom_options(model.options());

    pool->parallel_chunks(n, [&](std::size_t, std::size_t begin, std::size_t end) {
      core::BatchWorkspace ws = model.make_batch_workspace(width);
      std::vector<double> lane(nm);
      for (std::size_t b = begin; b < end; b += width) {
        const std::size_t w = std::min(width, end - b);
        model.moments_batch(std::span<const double>(points.data() + b, points.size() - b),
                            n, w, ws, std::span<double>(all.data() + b, all.size() - b), n,
                            std::span<unsigned char>(ok.data() + b, w), opts.mode);
        if (!need_rom) continue;
        for (std::size_t p = b; p < b + w; ++p) {
          if (!ok[p]) continue;
          for (std::size_t o = 0; o < nout; ++o) {
            for (std::size_t k = 0; k < nm; ++k) lane[k] = all[(o * nm + k) * n + p];
            fit_point_rom(ropts, lane, p, *results[o].rom, opts.pass_predicate,
                          results[o].pass.empty() ? nullptr : &results[o].pass);
          }
        }
      }
    });
  }

  for (std::size_t o = 0; o < nout; ++o) {
    SweepResult& r = results[o];
    r.moments.assign(all.begin() + static_cast<std::ptrdiff_t>(o * nm * n),
                     all.begin() + static_cast<std::ptrdiff_t>((o + 1) * nm * n));
    r.ok = ok;
    finalize_result(r);
  }
  return results;
}

// -- drivers -------------------------------------------------------------

std::vector<double> sample_points(std::span<const Distribution> distributions,
                                  std::size_t n, std::uint64_t seed) {
  std::vector<double> pts(distributions.size() * n);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < distributions.size(); ++i) {
    const Distribution& d = distributions[i];
    double* const row = pts.data() + i * n;
    switch (d.kind) {
      case Distribution::Kind::kNormal: {
        std::normal_distribution<double> dist(d.a, d.b);
        for (std::size_t p = 0; p < n; ++p) row[p] = dist(rng);
        break;
      }
      case Distribution::Kind::kUniform: {
        std::uniform_real_distribution<double> dist(d.a, d.b);
        for (std::size_t p = 0; p < n; ++p) row[p] = dist(rng);
        break;
      }
      case Distribution::Kind::kLogNormal: {
        if (d.a <= 0.0)
          throw std::invalid_argument("sample_points: lognormal median must be > 0");
        std::normal_distribution<double> dist(0.0, d.b);
        for (std::size_t p = 0; p < n; ++p) row[p] = d.a * std::exp(dist(rng));
        break;
      }
    }
  }
  return pts;
}

SweepResult monte_carlo(const core::CompiledModel& model,
                        std::span<const Distribution> distributions, std::size_t n,
                        std::uint64_t seed, const SweepOptions& opts) {
  if (distributions.size() != model.symbol_count())
    throw std::invalid_argument("monte_carlo: one distribution per model symbol required");
  return run_sweep(model, sample_points(distributions, n, seed), n, opts);
}

std::vector<double> grid_points(std::span<const Axis> axes, std::size_t& num_points_out) {
  std::size_t n = 1;
  for (const Axis& ax : axes) {
    if (ax.count == 0) throw std::invalid_argument("grid_points: axis count must be >= 1");
    if (ax.log_scale && (ax.lo <= 0.0) != (ax.hi <= 0.0))
      throw std::invalid_argument("grid_points: log axis endpoints must share a sign");
    n *= ax.count;
  }
  num_points_out = n;
  std::vector<double> pts(axes.size() * n);
  for (std::size_t p = 0; p < n; ++p) {
    // Row-major decode, last axis fastest.
    std::size_t rem = p;
    for (std::size_t i = axes.size(); i-- > 0;) {
      const Axis& ax = axes[i];
      const std::size_t j = rem % ax.count;
      rem /= ax.count;
      double v = ax.lo;
      if (ax.count > 1) {
        const double t = static_cast<double>(j) / static_cast<double>(ax.count - 1);
        v = ax.log_scale ? ax.lo * std::pow(ax.hi / ax.lo, t) : ax.lo + (ax.hi - ax.lo) * t;
      }
      pts[i * n + p] = v;
    }
  }
  return pts;
}

SweepResult grid_sweep(const core::CompiledModel& model, std::span<const Axis> axes,
                       const SweepOptions& opts) {
  if (axes.size() != model.symbol_count())
    throw std::invalid_argument("grid_sweep: one axis per model symbol required");
  std::size_t n = 0;
  std::vector<double> pts = grid_points(axes, n);
  return run_sweep(model, std::move(pts), n, opts);
}

SweepResult corners(const core::CompiledModel& model, std::span<const Corner> extremes,
                    const SweepOptions& opts) {
  if (extremes.size() != model.symbol_count())
    throw std::invalid_argument("corners: one lo/hi pair per model symbol required");
  if (extremes.size() > 24)
    throw std::invalid_argument("corners: 2^nsym explodes past 24 symbols; use monte_carlo");
  const std::size_t n = std::size_t{1} << extremes.size();
  std::vector<double> pts(extremes.size() * n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t i = 0; i < extremes.size(); ++i)
      pts[i * n + p] = (p >> i) & 1 ? extremes[i].hi : extremes[i].lo;
  return run_sweep(model, std::move(pts), n, opts);
}

}  // namespace awe::sweep
