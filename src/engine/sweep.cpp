#include "engine/sweep.hpp"

#include <algorithm>

#include "awe/sensitivity.hpp"
#include <cmath>
#include <limits>
#include <optional>
#include <random>
#include <stdexcept>

namespace awe::sweep {

const char* to_string(LadderStage s) {
  switch (s) {
    case LadderStage::kPrimary: return "primary";
    case LadderStage::kStrictReeval: return "strict-reeval";
    case LadderStage::kOrderFallback: return "order-fallback";
    case LadderStage::kShiftedRefit: return "shifted-refit";
    case LadderStage::kQuarantined: return "quarantined";
  }
  return "?";
}

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// fail_class value meaning "the parallel phase never reached this point".
/// Distinct from every FailClass so task-death containment can tell which
/// points the dead task left behind.
constexpr std::uint8_t kUnprocessed = 0xff;

engine::RomOptions rom_options(const core::ModelOptions& m) {
  engine::RomOptions r;
  r.order = m.order;
  r.enforce_stability = m.enforce_stability;
  r.allow_order_fallback = m.allow_order_fallback;
  return r;
}

RomSamples make_rom_samples(std::size_t n, std::size_t max_order) {
  RomSamples rs;
  rs.max_order = max_order;
  rs.order.assign(n, 0);
  rs.poles.assign(n * max_order, {kNaN, kNaN});
  rs.residues.assign(n * max_order, {kNaN, kNaN});
  rs.dc_gain.assign(n, kNaN);
  return rs;
}

/// Ladder verdict for one point: deepest stage that ran, and the terminal
/// FailClass when the point ended up quarantined (kNone otherwise).
struct FitOutcome {
  LadderStage stage = LadderStage::kPrimary;
  health::FailClass fail = health::FailClass::kNone;
};

/// Deterministic expansion shift for the refit stage: half the |m0/m1|
/// dominant-pole magnitude estimate, or 1 when that estimate is unusable.
/// Depends only on the point's own moments, never on sweep geometry.
double pick_shift(std::span<const double> m) {
  if (m.size() >= 2 && std::isfinite(m[0]) && std::isfinite(m[1]) && m[1] != 0.0) {
    const double s0 = 0.5 * std::abs(m[0] / m[1]);
    if (std::isfinite(s0) && s0 > 0.0) return s0;
  }
  return 1.0;
}

/// Exact truncated Taylor shift of the moment polynomial: with
/// H(s) = sum_k m_k s^k and s = s0 + sigma, the sigma-domain moments are
/// mhat_j = sum_{k>=j} C(k,j) m_k s0^(k-j).  Truncation keeps this an
/// approximation of H about s0, but a deterministic one — good enough to
/// rescue Hankel systems that are singular at the origin.
std::vector<double> shift_moments(std::span<const double> m, double s0) {
  const std::size_t nm = m.size();
  std::vector<double> out(nm, 0.0);
  for (std::size_t j = 0; j < nm; ++j) {
    double binom = 1.0;  // C(k, j), starting at k = j
    double pow_s = 1.0;  // s0^(k-j)
    double acc = 0.0;
    for (std::size_t k = j; k < nm; ++k) {
      acc += binom * m[k] * pow_s;
      pow_s *= s0;
      binom = binom * static_cast<double>(k + 1) / static_cast<double>(k + 1 - j);
    }
    out[j] = acc;
  }
  return out;
}

/// Fit point p's ROM from its moment lane, riding the degradation ladder:
/// user options -> order fallback -> shifted-moment refit -> quarantine.
/// Only fit failures (health::FailError) ride the ladder; programming
/// errors (std::bad_alloc, std::logic_error, ...) propagate to the caller.
/// A quarantined point keeps order 0 / NaN samples and a 0 pass flag.
/// `pre` (optional) is the point's approximant from the batched
/// pade_solve_batch pre-pass; when present the primary rung assembles the
/// ROM from it via from_pade — bit-identical to from_moments, minus the
/// redundant solve — and all failure rungs below stay unchanged.
FitOutcome fit_point_rom(const engine::RomOptions& ropts, std::span<const double> lane_moments,
                         std::size_t p, RomSamples& rs,
                         const std::function<bool(const engine::ReducedOrderModel&)>& pred,
                         std::vector<std::uint8_t>* pass, health::HealthReport& hr,
                         const engine::PadeResult* pre = nullptr) {
  const auto record = [&](const engine::ReducedOrderModel& rom) {
    const std::size_t q = std::min(rom.order(), rs.max_order);
    rs.order[p] = static_cast<std::uint8_t>(q);
    for (std::size_t j = 0; j < q; ++j) {
      rs.poles[p * rs.max_order + j] = rom.poles()[j];
      rs.residues[p * rs.max_order + j] = rom.residues()[j];
    }
    rs.dc_gain[p] = rom.dc_gain();
    if (pred && pass) (*pass)[p] = pred(rom) ? 1 : 0;
  };
  health::FailClass last = health::FailClass::kUnknown;
  try {
    record(pre && pre->order > 0
               ? engine::ReducedOrderModel::from_pade(*pre, lane_moments, ropts)
               : engine::ReducedOrderModel::from_moments(lane_moments, ropts));
    return {};
  } catch (const health::FailError& e) {
    last = e.fail_class();
  }
  if (!ropts.allow_order_fallback) {
    ++hr.order_fallbacks;
    engine::RomOptions relaxed = ropts;
    relaxed.allow_order_fallback = true;
    try {
      record(engine::ReducedOrderModel::from_moments(lane_moments, relaxed));
      return {LadderStage::kOrderFallback, health::FailClass::kNone};
    } catch (const health::FailError& e) {
      last = e.fail_class();
    }
  }
  ++hr.shifted_refits;
  try {
    const double s0 = pick_shift(lane_moments);
    engine::RomOptions relaxed = ropts;
    relaxed.allow_order_fallback = true;
    record(engine::ReducedOrderModel::from_shifted_moments(shift_moments(lane_moments, s0),
                                                           relaxed, s0));
    return {LadderStage::kShiftedRefit, health::FailClass::kNone};
  } catch (const health::FailError& e) {
    last = e.fail_class();
  }
  return {LadderStage::kQuarantined, last};
}

/// True when all `rows` output lanes of point p hold finite values.
bool lanes_finite(const std::vector<double>& soa, std::size_t rows, std::size_t n,
                  std::size_t p) {
  for (std::size_t r = 0; r < rows; ++r)
    if (!std::isfinite(soa[r * n + p])) return false;
  return true;
}

/// Evaluation rung of the ladder for one point whose lanes were just
/// filled by a moments_batch call.  In fast mode a rejected or non-finite
/// point gets one width-1 strict re-evaluation (fast-mode fusion is the
/// usual suspect) before being quarantined.  Writes recovered moments back
/// into the shared SoA block.
template <typename Model>
FitOutcome eval_ladder_point(const Model& model, const std::vector<double>& pts,
                             std::vector<double>& soa, std::vector<std::uint8_t>& ok,
                             std::size_t rows, std::size_t n, std::size_t p,
                             core::EvalMode mode, std::optional<core::BatchWorkspace>& ws1,
                             std::uint64_t& strict_reevals) {
  bool finite = lanes_finite(soa, rows, n, p);
  LadderStage stage = LadderStage::kPrimary;
  if (mode == core::EvalMode::kFast && (!ok[p] || !finite)) {
    ++strict_reevals;
    if (!ws1) ws1 = model.make_batch_workspace(1);
    model.moments_batch(std::span<const double>(pts.data() + p, pts.size() - p), n, 1, *ws1,
                        std::span<double>(soa.data() + p, soa.size() - p), n,
                        std::span<unsigned char>(ok.data() + p, 1), core::EvalMode::kStrict);
    finite = lanes_finite(soa, rows, n, p);
    if (ok[p] && finite) stage = LadderStage::kStrictReeval;
  }
  if (!ok[p] || !finite) {
    const health::FailClass fail =
        !ok[p] ? health::FailClass::kSingularY0 : health::FailClass::kNonFiniteEval;
    ok[p] = 0;
    return {LadderStage::kQuarantined, fail};
  }
  return {stage, health::FailClass::kNone};
}

/// Two-pass min/max/mean/stddev over the finite values of ok points.
Stats stats_over(const double* vals, std::size_t n, const std::vector<std::uint8_t>& ok) {
  Stats s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    if (!ok.empty() && !ok[p]) continue;
    const double v = vals[p];
    if (!std::isfinite(v)) continue;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
    ++s.count;
  }
  if (s.count == 0) {
    s.min = s.max = s.mean = s.stddev = kNaN;
    return s;
  }
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    if (!ok.empty() && !ok[p]) continue;
    const double v = vals[p];
    if (!std::isfinite(v)) continue;
    sq += (v - s.mean) * (v - s.mean);
  }
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

/// Serial post-join reductions shared by both run_sweep overloads.
void finalize_result(SweepResult& res) {
  const std::size_t n = res.num_points;
  res.moment_stats.resize(res.num_moments);
  for (std::size_t k = 0; k < res.num_moments; ++k)
    res.moment_stats[k] = stats_over(res.moments.data() + k * n, n, res.ok);
  res.ok_count = 0;
  for (const std::uint8_t f : res.ok) res.ok_count += f;
  res.pass_count = 0;
  for (const std::uint8_t f : res.pass) res.pass_count += f;
  if (res.rom) res.dc_gain_stats = stats_over(res.rom->dc_gain.data(), n, res.ok);
  // Health disposition: every point lands in exactly one bucket, so
  // ok + degraded + quarantined == num_points always holds.
  res.health.points_total = n;
  for (std::size_t p = 0; p < n; ++p) {
    const auto stage = static_cast<LadderStage>(res.ladder_stage[p]);
    if (stage == LadderStage::kQuarantined) {
      ++res.health.points_quarantined;
      res.health.record_failure(static_cast<health::FailClass>(res.fail_class[p]));
    } else if (stage == LadderStage::kPrimary) {
      ++res.health.points_ok;
    } else {
      ++res.health.points_degraded;
    }
  }
}

/// Deadline cancellation for one chunk: quarantine every remaining point
/// [b, end) of the chunk as FailClass::kDeadline.  Points the chunk (or
/// other chunks) already evaluated keep their results — the sweep returns
/// partial, honestly-accounted output, never a torn one.
void mark_deadline_points(std::size_t b, std::size_t end,
                          std::vector<std::uint8_t>& ok,
                          std::vector<std::uint8_t>& ladder_stage,
                          std::vector<std::uint8_t>& fail_class) {
  for (std::size_t p = b; p < end; ++p) {
    ok[p] = 0;
    ladder_stage[p] = static_cast<std::uint8_t>(LadderStage::kQuarantined);
    fail_class[p] = static_cast<std::uint8_t>(health::FailClass::kDeadline);
  }
}

/// A pool task died outside any point's ladder (e.g. an injected
/// thread_pool.task fault).  Results already written stand; every point
/// the dead task never reached is quarantined as a task casualty.
void contain_task_failure(std::vector<std::uint8_t>& fail_class,
                          std::vector<std::uint8_t>& ladder_stage,
                          std::vector<std::uint8_t>& ok) {
  for (std::size_t p = 0; p < fail_class.size(); ++p) {
    if (fail_class[p] != kUnprocessed) continue;
    ok[p] = 0;
    ladder_stage[p] = static_cast<std::uint8_t>(LadderStage::kQuarantined);
    fail_class[p] = static_cast<std::uint8_t>(health::FailClass::kTaskException);
  }
}

}  // namespace

SweepResult run_sweep(const core::CompiledModel& model, std::vector<double> points,
                      std::size_t num_points, const SweepOptions& opts) {
  const std::size_t nsym = model.symbol_count();
  const std::size_t nm = model.moment_count();
  if (points.size() != nsym * num_points)
    throw std::invalid_argument("run_sweep: points.size() must be symbol_count*num_points");

  const bool want_grads = opts.gradients || opts.pole_sensitivities;
  if (want_grads && !model.has_gradients())
    throw std::invalid_argument(
        "run_sweep: SweepOptions::gradients requires a model built with "
        "ModelOptions::with_gradients");

  SweepResult res;
  res.num_points = num_points;
  res.num_symbols = nsym;
  res.num_moments = nm;
  res.points = std::move(points);
  res.moments.assign(nm * num_points, 0.0);
  res.ok.assign(num_points, 1);
  res.ladder_stage.assign(num_points, 0);
  res.fail_class.assign(num_points, kUnprocessed);
  const bool need_rom = opts.with_rom || static_cast<bool>(opts.pass_predicate);
  if (need_rom) res.rom = make_rom_samples(num_points, model.order());
  if (opts.pass_predicate) res.pass.assign(num_points, 0);
  if (want_grads) res.gradients.assign(nsym * nm * num_points, 0.0);
  if (opts.pole_sensitivities) {
    res.sensitivities.emplace();
    res.sensitivities->max_order = model.order();
    res.sensitivities->num_symbols = nsym;
    res.sensitivities->ok.assign(num_points, 0);
    res.sensitivities->dpole.assign(num_points * model.order() * nsym, {kNaN, kNaN});
  }
  if (num_points == 0) {
    finalize_result(res);
    return res;
  }

  std::optional<ThreadPool> local;
  ThreadPool* pool = opts.pool;
  if (!pool) pool = &local.emplace(opts.threads);
  const std::size_t width = std::max<std::size_t>(1, opts.batch_width);
  const engine::RomOptions ropts = rom_options(model.options());
  const std::size_t n = num_points;

  // One HealthReport per static chunk; merged serially after the join, so
  // the ladder counters are deterministic for a given chunk geometry and
  // (being pure sums) identical across geometries.
  std::vector<health::HealthReport> worker_health(pool->size());

  try {
    pool->parallel_chunks(n, [&](std::size_t worker, std::size_t begin, std::size_t end) {
      health::HealthReport& hr = worker_health[worker];
      core::BatchWorkspace ws = want_grads ? model.make_gradient_batch_workspace(width)
                                           : model.make_batch_workspace(width);
      std::optional<core::BatchWorkspace> ws1;
      std::vector<double> lane(nm);
      std::vector<engine::PadeResult> pre;
      // Per-point chain-rule scratch for the pole-sensitivity pass.
      std::vector<std::vector<double>> dm_point;
      std::vector<bool> all_active;
      if (opts.pole_sensitivities) {
        dm_point.assign(nm, std::vector<double>(nsym, 0.0));
        all_active.assign(nsym, true);
      }
      for (std::size_t b = begin; b < end; b += width) {
        // Deadline check once per batch: a cancelled sweep stops doing new
        // work here, quarantines the rest of its chunk as kDeadline, and
        // frees its pool slot instead of running to completion.
        if (opts.cancel && opts.cancel->cancelled()) {
          mark_deadline_points(b, end, res.ok, res.ladder_stage, res.fail_class);
          break;
        }
        const std::size_t w = std::min(width, end - b);
        if (want_grads) {
          // One gradient-program run yields moments AND all gradients (the
          // stream embeds the primal outputs), keeping the forward path's
          // disjoint-slot writes and strict bit-identity.
          model.moments_and_gradients_batch(
              std::span<const double>(res.points.data() + b, res.points.size() - b), n, w, ws,
              std::span<double>(res.moments.data() + b, res.moments.size() - b), n,
              std::span<double>(res.gradients.data() + b, res.gradients.size() - b), n,
              std::span<unsigned char>(res.ok.data() + b, w), opts.mode, opts.backend);
        } else {
          model.moments_batch(
              std::span<const double>(res.points.data() + b, res.points.size() - b), n, w, ws,
              std::span<double>(res.moments.data() + b, res.moments.size() - b), n,
              std::span<unsigned char>(res.ok.data() + b, w), opts.mode, opts.backend);
        }
        if (need_rom) {
          // Batched q x q Padé solves straight off the SoA moment block.
          // A fast-mode strict re-eval below rewrites the lane, so the
          // pre-solved approximant is only used for kPrimary points.
          pre.resize(w);
          engine::pade_solve_batch(
              std::span<const double>(res.moments.data() + b, res.moments.size() - b), n, w,
              ropts.order, ropts.allow_order_fallback,
              std::span<const unsigned char>(res.ok.data() + b, w),
              std::span<engine::PadeResult>(pre.data(), w));
        }
        for (std::size_t p = b; p < b + w; ++p) {
          FitOutcome out = eval_ladder_point(model, res.points, res.moments, res.ok, nm, n, p,
                                             opts.mode, ws1, hr.strict_reevals);
          if (out.fail == health::FailClass::kNone && need_rom) {
            for (std::size_t k = 0; k < nm; ++k) lane[k] = res.moments[k * n + p];
            const FitOutcome fit =
                fit_point_rom(ropts, lane, p, *res.rom, opts.pass_predicate,
                              res.pass.empty() ? nullptr : &res.pass, hr,
                              out.stage == LadderStage::kPrimary ? &pre[p - b] : nullptr);
            if (fit.fail != health::FailClass::kNone) {
              out = fit;
            } else {
              out.stage = std::max(out.stage, fit.stage);
            }
          }
          if (opts.pole_sensitivities && out.fail == health::FailClass::kNone) {
            // Chain this point's moment gradients through the Padé/Hankel
            // system.  Pure per-point work on disjoint slots, so the sweep
            // determinism guarantee is untouched; a singular Hankel system
            // or non-finite gradients leave NaN rows and a 0 flag.
            bool finite = lanes_finite(res.moments, nm, n, p);
            for (std::size_t i = 0; i < nsym && finite; ++i)
              for (std::size_t k = 0; k < nm; ++k) {
                const double g = res.gradients[(i * nm + k) * n + p];
                if (!std::isfinite(g)) {
                  finite = false;
                  break;
                }
                dm_point[k][i] = g;
              }
            if (finite) {
              for (std::size_t k = 0; k < nm; ++k) lane[k] = res.moments[k * n + p];
              try {
                const auto pz = engine::pole_zero_sensitivities_from_dm(
                    lane, dm_point, all_active, ropts.order);
                SensitivitySamples& ss = *res.sensitivities;
                const std::size_t nj = std::min(pz.poles.size(), ss.max_order);
                for (std::size_t j = 0; j < nj; ++j)
                  for (std::size_t i = 0; i < nsym; ++i)
                    ss.dpole[(p * ss.max_order + j) * nsym + i] = pz.dpole[j][i];
                ss.ok[p] = 1;
              } catch (const std::runtime_error&) {
                // Singular Hankel system: the flag stays 0 and the point's
                // rows stay NaN — skip-not-fail, like the fuzz oracles.
              }
            }
          }
          res.ladder_stage[p] = static_cast<std::uint8_t>(out.stage);
          res.fail_class[p] = static_cast<std::uint8_t>(out.fail);
        }
      }
    });
  } catch (const health::FailError&) {
    contain_task_failure(res.fail_class, res.ladder_stage, res.ok);
  }
  for (const health::HealthReport& hr : worker_health) {
    res.health.strict_reevals += hr.strict_reevals;
    res.health.order_fallbacks += hr.order_fallbacks;
    res.health.shifted_refits += hr.shifted_refits;
  }

  finalize_result(res);
  return res;
}

SweepResult run_sweep(const core::SharedModelStore& store, std::vector<double> points,
                      std::size_t num_points, const SweepOptions& opts) {
  // One pin for the whole sweep: every batch of every worker evaluates the
  // same generation, and the pin keeps its region mapped even if any
  // number of publishes land while we run.
  const std::shared_ptr<const core::CompiledModel> pinned = store.acquire();
  if (!pinned)
    throw std::runtime_error("run_sweep: model store '" + store.name() +
                             "' has no published model");
  return run_sweep(*pinned, std::move(points), num_points, opts);
}

std::vector<SweepResult> run_sweep(const core::MultiOutputModel& model,
                                   std::vector<double> points, std::size_t num_points,
                                   const SweepOptions& opts) {
  const std::size_t nsym = model.symbol_count();
  const std::size_t nm = model.moment_count();
  const std::size_t nout = model.output_count();
  if (points.size() != nsym * num_points)
    throw std::invalid_argument("run_sweep: points.size() must be symbol_count*num_points");
  if (opts.gradients || opts.pole_sensitivities)
    throw std::invalid_argument(
        "run_sweep: gradients are supported for single-output models only");
  const std::size_t n = num_points;

  std::vector<SweepResult> results(nout);
  const bool need_rom = opts.with_rom || static_cast<bool>(opts.pass_predicate);
  for (std::size_t o = 0; o < nout; ++o) {
    SweepResult& r = results[o];
    r.num_points = n;
    r.num_symbols = nsym;
    r.num_moments = nm;
    r.points = points;
    r.ok.assign(n, 1);
    r.ladder_stage.assign(n, 0);
    r.fail_class.assign(n, kUnprocessed);
    if (need_rom) r.rom = make_rom_samples(n, model.order());
    if (opts.pass_predicate) r.pass.assign(n, 0);
  }
  // All outputs' moments in one SoA block so a single shared program pass
  // fills every output; rows are handed to the per-output results after.
  std::vector<double> all(nout * nm * n, 0.0);
  std::vector<std::uint8_t> ok(n, 1);

  if (n > 0) {
    std::optional<ThreadPool> local;
    ThreadPool* pool = opts.pool;
    if (!pool) pool = &local.emplace(opts.threads);
    const std::size_t width = std::max<std::size_t>(1, opts.batch_width);
    const engine::RomOptions ropts = rom_options(model.options());

    // Ladder counters per (chunk, output); strict re-evals recompute every
    // output of the point at once, so that count is shared per chunk and
    // credited to each output's report after the join.
    struct WorkerHealth {
      std::uint64_t strict_reevals = 0;
      std::vector<health::HealthReport> per_output;
    };
    std::vector<WorkerHealth> worker_health(pool->size());
    for (WorkerHealth& wh : worker_health) wh.per_output.resize(nout);

    try {
      pool->parallel_chunks(n, [&](std::size_t worker, std::size_t begin, std::size_t end) {
        WorkerHealth& wh = worker_health[worker];
        core::BatchWorkspace ws = model.make_batch_workspace(width);
        std::optional<core::BatchWorkspace> ws1;
        std::vector<double> lane(nm);
        for (std::size_t b = begin; b < end; b += width) {
          if (opts.cancel && opts.cancel->cancelled()) {
            for (std::size_t o = 0; o < nout; ++o)
              mark_deadline_points(b, end, ok, results[o].ladder_stage,
                                   results[o].fail_class);
            break;
          }
          const std::size_t w = std::min(width, end - b);
          // Multi-output programs are not AOT-compiled; the backend knob is
          // forwarded for signature symmetry and interprets regardless.
          model.moments_batch(std::span<const double>(points.data() + b, points.size() - b),
                              n, w, ws, std::span<double>(all.data() + b, all.size() - b), n,
                              std::span<unsigned char>(ok.data() + b, w), opts.mode,
                              opts.backend);
          for (std::size_t p = b; p < b + w; ++p) {
            const FitOutcome ev = eval_ladder_point(model, points, all, ok, nout * nm, n, p,
                                                    opts.mode, ws1, wh.strict_reevals);
            for (std::size_t o = 0; o < nout; ++o) {
              FitOutcome out = ev;
              if (ev.fail == health::FailClass::kNone && need_rom) {
                for (std::size_t k = 0; k < nm; ++k) lane[k] = all[(o * nm + k) * n + p];
                const FitOutcome fit =
                    fit_point_rom(ropts, lane, p, *results[o].rom, opts.pass_predicate,
                                  results[o].pass.empty() ? nullptr : &results[o].pass,
                                  wh.per_output[o]);
                if (fit.fail != health::FailClass::kNone) {
                  out = fit;
                } else {
                  out.stage = std::max(out.stage, fit.stage);
                }
              }
              results[o].ladder_stage[p] = static_cast<std::uint8_t>(out.stage);
              results[o].fail_class[p] = static_cast<std::uint8_t>(out.fail);
            }
          }
        }
      });
    } catch (const health::FailError&) {
      for (std::size_t o = 0; o < nout; ++o)
        contain_task_failure(results[o].fail_class, results[o].ladder_stage, ok);
    }
    for (const WorkerHealth& wh : worker_health) {
      for (std::size_t o = 0; o < nout; ++o) {
        results[o].health.strict_reevals += wh.strict_reevals;
        results[o].health.order_fallbacks += wh.per_output[o].order_fallbacks;
        results[o].health.shifted_refits += wh.per_output[o].shifted_refits;
      }
    }
  }

  for (std::size_t o = 0; o < nout; ++o) {
    SweepResult& r = results[o];
    r.moments.assign(all.begin() + static_cast<std::ptrdiff_t>(o * nm * n),
                     all.begin() + static_cast<std::ptrdiff_t>((o + 1) * nm * n));
    r.ok = ok;
    finalize_result(r);
  }
  return results;
}

// -- drivers -------------------------------------------------------------

std::vector<double> sample_points(std::span<const Distribution> distributions,
                                  std::size_t n, std::uint64_t seed) {
  std::vector<double> pts(distributions.size() * n);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < distributions.size(); ++i) {
    const Distribution& d = distributions[i];
    double* const row = pts.data() + i * n;
    switch (d.kind) {
      case Distribution::Kind::kNormal: {
        std::normal_distribution<double> dist(d.a, d.b);
        for (std::size_t p = 0; p < n; ++p) row[p] = dist(rng);
        break;
      }
      case Distribution::Kind::kUniform: {
        std::uniform_real_distribution<double> dist(d.a, d.b);
        for (std::size_t p = 0; p < n; ++p) row[p] = dist(rng);
        break;
      }
      case Distribution::Kind::kLogNormal: {
        if (d.a <= 0.0)
          throw std::invalid_argument("sample_points: lognormal median must be > 0");
        std::normal_distribution<double> dist(0.0, d.b);
        for (std::size_t p = 0; p < n; ++p) row[p] = d.a * std::exp(dist(rng));
        break;
      }
    }
  }
  return pts;
}

SweepResult monte_carlo(const core::CompiledModel& model,
                        std::span<const Distribution> distributions, std::size_t n,
                        std::uint64_t seed, const SweepOptions& opts) {
  if (distributions.size() != model.symbol_count())
    throw std::invalid_argument("monte_carlo: one distribution per model symbol required");
  return run_sweep(model, sample_points(distributions, n, seed), n, opts);
}

std::vector<double> grid_points(std::span<const Axis> axes, std::size_t& num_points_out) {
  std::size_t n = 1;
  for (const Axis& ax : axes) {
    if (ax.count == 0) throw std::invalid_argument("grid_points: axis count must be >= 1");
    if (ax.log_scale && (ax.lo <= 0.0) != (ax.hi <= 0.0))
      throw std::invalid_argument("grid_points: log axis endpoints must share a sign");
    n *= ax.count;
  }
  num_points_out = n;
  std::vector<double> pts(axes.size() * n);
  for (std::size_t p = 0; p < n; ++p) {
    // Row-major decode, last axis fastest.
    std::size_t rem = p;
    for (std::size_t i = axes.size(); i-- > 0;) {
      const Axis& ax = axes[i];
      const std::size_t j = rem % ax.count;
      rem /= ax.count;
      double v = ax.lo;
      if (ax.count > 1) {
        const double t = static_cast<double>(j) / static_cast<double>(ax.count - 1);
        v = ax.log_scale ? ax.lo * std::pow(ax.hi / ax.lo, t) : ax.lo + (ax.hi - ax.lo) * t;
      }
      pts[i * n + p] = v;
    }
  }
  return pts;
}

SweepResult grid_sweep(const core::CompiledModel& model, std::span<const Axis> axes,
                       const SweepOptions& opts) {
  if (axes.size() != model.symbol_count())
    throw std::invalid_argument("grid_sweep: one axis per model symbol required");
  std::size_t n = 0;
  std::vector<double> pts = grid_points(axes, n);
  return run_sweep(model, std::move(pts), n, opts);
}

SweepResult corners(const core::CompiledModel& model, std::span<const Corner> extremes,
                    const SweepOptions& opts) {
  if (extremes.size() != model.symbol_count())
    throw std::invalid_argument("corners: one lo/hi pair per model symbol required");
  if (extremes.size() > 24)
    throw std::invalid_argument("corners: 2^nsym explodes past 24 symbols; use monte_carlo");
  const std::size_t n = std::size_t{1} << extremes.size();
  std::vector<double> pts(extremes.size() * n);
  for (std::size_t p = 0; p < n; ++p)
    for (std::size_t i = 0; i < extremes.size(); ++i)
      pts[i * n + p] = (p >> i) & 1 ? extremes[i].hi : extremes[i].lo;
  return run_sweep(model, std::move(pts), n, opts);
}

}  // namespace awe::sweep
