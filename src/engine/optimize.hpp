// Gradient-driven design optimization over compiled symbolic models
// (DESIGN.md §14).
//
// The paper's closing loop: once moments AND their exact gradients come
// out of one compiled program run, first-order design tasks — re-centering
// a nominal onto a performance target, finding the worst-case process
// corner — reduce to a handful of cheap evaluations.  Everything here
// works on scalar measures derived from the first moments (DC gain,
// Elmore delay, first-order dominant-pole frequency), whose gradients
// follow from d(moments)/d(value) by the chain rule; the batched sweep
// engine then verifies the re-centered design statistically (yield).
//
// Deterministic by construction: no randomness, no cross-point state —
// the same model and options always produce the same iterates, which is
// what the gradient-determinism CI job byte-compares.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/awesymbolic.hpp"

namespace awe::opt {

/// Scalar performance measures with exact compiled gradients.
enum class Measure : std::uint8_t {
  kDcGain,       ///< m_0
  kElmoreDelay,  ///< -m_1 / m_0 (first-order delay estimate)
  kPole1Hz,      ///< |m_0 / m_1| / 2pi (first-order dominant pole, Hz)
};

const char* to_string(Measure m);
/// Parse "dcgain" | "elmore" | "pole1" (returns false on anything else).
bool parse_measure(const std::string& name, Measure& out);

struct MeasureValue {
  double value = 0.0;
  std::vector<double> gradient;  ///< d(value)/d(element value), per symbol
};

/// Evaluate the measure and its exact gradient at `x` through the model's
/// reverse-mode gradient program (requires ModelOptions::with_gradients).
MeasureValue eval_measure(const core::CompiledModel& model, Measure measure,
                          std::span<const double> x);

struct RecenterOptions {
  Measure measure = Measure::kPole1Hz;
  double target = 0.0;
  std::size_t max_iters = 32;
  /// Converged when |value - target| <= tol * max(|target|, |value|).
  double tol = 1e-9;
  /// Largest relative parameter change per iteration (box clamp in log
  /// space, so parameters can never cross zero).
  double max_step = 0.5;
};

struct RecenterResult {
  std::vector<double> x;          ///< re-centered nominal
  double value = 0.0;             ///< measure at x
  double residual = 0.0;          ///< |value - target| / max(|target|, |value|)
  std::size_t iterations = 0;
  bool converged = false;
  std::vector<double> residual_history;  ///< residual after each iteration
};

/// Re-center the nominal design point so the measure hits `target`:
/// log-space Gauss-Newton on the scalar residual with backtracking line
/// search.  Log space both respects the positivity of R/G/C/L values and
/// makes the step a RELATIVE design change, which is the natural unit for
/// process re-centering.  `x0` must be strictly positive (throws
/// std::invalid_argument otherwise).
RecenterResult recenter_nominal(const core::CompiledModel& model,
                                const RecenterOptions& opts, std::span<const double> x0);

struct CornerSearchOptions {
  Measure measure = Measure::kPole1Hz;
  bool maximize = true;  ///< worst case = the extreme the spec fears
  std::vector<double> lo, hi;  ///< per-symbol box (both required)
  std::size_t max_iters = 16;
};

struct CornerSearchResult {
  std::vector<double> corner;  ///< per-symbol lo/hi assignment
  double value = 0.0;          ///< measure at the corner
  std::size_t iterations = 0;
  bool converged = false;  ///< gradient-sign assignment reached a fixed point
};

/// Gradient-directed worst-case corner search: starting from the box
/// midpoint, repeatedly move every symbol to the box face its gradient
/// sign points at, until the assignment is a fixed point.  For measures
/// monotone in each parameter over the box (the common case for
/// first-moment measures) this is exact; otherwise it is a descent-style
/// heuristic that still returns a valid corner and its value.
CornerSearchResult worst_case_corner(const core::CompiledModel& model,
                                     const CornerSearchOptions& opts);

}  // namespace awe::opt
