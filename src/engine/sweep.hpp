// Parallel batched sweep engine over compiled symbolic models.
//
// The paper's economics (Table 1) make the compiled model the right tool
// for *repeated* evaluation — iterative design loops, corner analysis,
// Monte Carlo yield.  This engine serves that workload at scale: points
// are laid out structure-of-arrays and evaluated through the batched
// interpreter (CompiledProgram::run_batch) by a static-chunked thread
// pool, one allocation-free BatchWorkspace per worker.
//
// Determinism guarantee (EvalMode::kStrict, the default): a sweep's
// numeric results are bit-identical regardless of thread count and batch
// width.  Per-lane arithmetic in the batched interpreter matches the
// scalar order exactly, every point owns disjoint output slots, Monte
// Carlo points are drawn serially before the parallel phase, and all
// statistics are reduced serially after it.  EvalMode::kFast runs the
// peephole-fused interpreter instead: faster, within a small ULP bound of
// strict, but not bit-reproducible across batch geometry.
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "awe/rom.hpp"
#include "core/awesymbolic.hpp"
#include "core/model_store.hpp"
#include "engine/cancel.hpp"
#include "engine/thread_pool.hpp"
#include "health/report.hpp"
#include "health/status.hpp"

namespace awe::sweep {

/// Deterministic per-point degradation ladder (DESIGN.md §11).  Each point
/// records the DEEPEST stage that had to run for it to produce a result;
/// kQuarantined means every stage failed and SweepResult::fail_class holds
/// why.  The ladder is a fixed per-point sequence with no cross-point or
/// cross-thread state, so it terminates deterministically and preserves
/// the sweep engine's bit-identical-across-thread-counts guarantee.
enum class LadderStage : std::uint8_t {
  kPrimary = 0,       ///< first-try eval (and ROM fit) succeeded
  kStrictReeval = 1,  ///< fast-mode point re-evaluated in strict mode
  kOrderFallback = 2, ///< Padé order fallback recovered the ROM fit
  kShiftedRefit = 3,  ///< shifted-moment refit recovered the ROM fit
  kQuarantined = 4,   ///< no stage recovered; fail_class records why
};

const char* to_string(LadderStage s);

struct SweepOptions {
  std::size_t threads = 0;       ///< total workers; 0 = hardware concurrency
  std::size_t batch_width = 64;  ///< SoA lane-block width (points per run_batch)
  /// Interpreter contract: kStrict (default) preserves the bit-identical
  /// determinism guarantee above; kFast runs the peephole-fused stream —
  /// measurably faster, results within a small ULP bound of strict but
  /// dependent on batch geometry (thread count / width) at that level.
  core::EvalMode mode = core::EvalMode::kStrict;
  /// Executable form for the primary batch evaluations: kNative runs the
  /// model's AOT-compiled module (attach with BuildOptions::backend =
  /// kNative), falling back to the interpreter transparently when none is
  /// attached.  The ladder's strict re-evaluation rung always uses the
  /// interpreter — it is the bit-reproducible reference (DESIGN.md §12).
  core::EvalBackend backend = core::EvalBackend::kInterpreter;
  /// Extract a per-point reduced-order model and record its poles,
  /// residues and DC gain in SweepResult::rom.
  bool with_rom = false;
  /// Per-point acceptance predicate on the reduced-order model (e.g. a
  /// pole-location criterion for yield).  Setting it implies per-point ROM
  /// extraction; points whose evaluation or ROM fit fails count as fails.
  std::function<bool(const engine::ReducedOrderModel&)> pass_predicate;
  /// Evaluate d(moments)/d(element value) for all symbols at every point
  /// through the model's reverse-mode gradient program (requires a model
  /// built with ModelOptions::with_gradients; throws std::invalid_argument
  /// otherwise).  Fills SweepResult::gradients.  The gradient stream
  /// embeds the primal outputs, so this replaces — not duplicates — the
  /// forward program run; in kStrict the moments AND gradients are
  /// bit-identical across thread counts and batch widths, exactly like the
  /// forward path (DESIGN.md §14).
  bool gradients = false;
  /// With `gradients`: additionally chain each point's moment gradients
  /// through the Padé/Hankel system (pole_zero_sensitivities_from_dm) to
  /// per-point pole sensitivities, filling SweepResult::sensitivities.
  /// Per-point and cross-point-state-free, so the determinism guarantee is
  /// preserved.  Points whose Hankel system is singular get NaN rows and a
  /// 0 flag — never a sweep failure.
  bool pole_sensitivities = false;
  /// Reuse an existing pool across sweeps (overrides `threads`).
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation (engine/cancel.hpp): checked once per SoA
  /// batch by every worker.  Once it reports cancelled, points not yet
  /// evaluated are quarantined with FailClass::kDeadline and the sweep
  /// returns early with partial — but fully accounted — results; the pool
  /// and its workspaces stay reusable.  nullptr = never cancelled.
  const CancelToken* cancel = nullptr;
};

/// Summary statistics over the successfully evaluated points.
struct Stats {
  double min = 0.0, max = 0.0, mean = 0.0, stddev = 0.0;
  std::size_t count = 0;  ///< points the statistic was computed over
};

/// Per-point reduced-order model samples, flattened SoA-style.  Points
/// whose Padé fit dropped to a lower order (or failed, order 0) have their
/// unused pole/residue slots NaN-padded.
struct RomSamples {
  std::size_t max_order = 0;
  std::vector<std::uint8_t> order;           ///< actual order per point
  std::vector<std::complex<double>> poles;   ///< [p*max_order + j]
  std::vector<std::complex<double>> residues;///< [p*max_order + j]
  std::vector<double> dc_gain;               ///< per point (NaN on failure)
};

/// Per-point pole sensitivities (SweepOptions::pole_sensitivities),
/// flattened SoA-style like RomSamples.  Points whose chain-rule solve
/// failed (singular Hankel system, non-finite gradients) keep NaN slots
/// and a 0 ok flag.
struct SensitivitySamples {
  std::size_t max_order = 0;
  std::size_t num_symbols = 0;
  std::vector<std::uint8_t> ok;  ///< per point: chain rule succeeded
  /// d p_j / d v_i at point p: dpole[(p*max_order + j)*num_symbols + i].
  std::vector<std::complex<double>> dpole;
};

struct SweepResult {
  std::size_t num_points = 0;
  std::size_t num_symbols = 0;
  std::size_t num_moments = 0;
  std::vector<double> points;       ///< SoA: symbol i of point p at [i*num_points + p]
  std::vector<double> moments;      ///< SoA: moment k of point p at [k*num_points + p]
  std::vector<std::uint8_t> ok;     ///< per point: moments evaluated successfully
  std::vector<std::uint8_t> pass;   ///< per point predicate result (empty without one)
  std::vector<Stats> moment_stats;  ///< one per moment, over ok points
  std::optional<RomSamples> rom;    ///< filled when SweepOptions::with_rom
  std::optional<Stats> dc_gain_stats;  ///< filled alongside rom/predicate
  /// SoA moment gradients (SweepOptions::gradients): d m_k / d v_i at
  /// point p sits at [(i*num_moments + k)*num_points + p], chain-ruled to
  /// ELEMENT values.  NaN for failed points; empty without the option.
  std::vector<double> gradients;
  /// Per-point pole sensitivities (SweepOptions::pole_sensitivities).
  std::optional<SensitivitySamples> sensitivities;
  std::size_t ok_count = 0;
  std::size_t pass_count = 0;
  /// Per point: deepest LadderStage that ran for it (values of LadderStage).
  std::vector<std::uint8_t> ladder_stage;
  /// Per point: FailClass of quarantined points (kNone when not quarantined).
  std::vector<std::uint8_t> fail_class;
  /// Aggregated fault/degradation accounting for this sweep.  points_ok +
  /// points_degraded + points_quarantined == num_points, always.
  health::HealthReport health;

  double point(std::size_t symbol, std::size_t p) const { return points[symbol * num_points + p]; }
  double moment(std::size_t k, std::size_t p) const { return moments[k * num_points + p]; }
  double gradient(std::size_t symbol, std::size_t k, std::size_t p) const {
    return gradients[(symbol * num_moments + k) * num_points + p];
  }
  LadderStage point_stage(std::size_t p) const {
    return static_cast<LadderStage>(ladder_stage[p]);
  }
  health::FailClass point_fail_class(std::size_t p) const {
    return static_cast<health::FailClass>(fail_class[p]);
  }
  /// Fraction of ALL points passing the predicate (failures count against).
  double yield() const {
    return num_points == 0 ? 0.0 : static_cast<double>(pass_count) / static_cast<double>(num_points);
  }
};

/// Evaluate the model over `num_points` points given SoA (symbol-major):
/// element value i of point p at points[i*num_points + p].  The core
/// engine under all drivers below.
SweepResult run_sweep(const core::CompiledModel& model, std::vector<double> points,
                      std::size_t num_points, const SweepOptions& opts = {});

/// Multi-output variant: one shared compiled-program pass per point, then
/// per-output moments/ROMs.  Returns one SweepResult per model output
/// (each carrying its own copy of the point set).
std::vector<SweepResult> run_sweep(const core::MultiOutputModel& model,
                                   std::vector<double> points, std::size_t num_points,
                                   const SweepOptions& opts = {});

/// Hot-swap-safe variant: pins the store's current generation ONCE (one
/// shared_ptr copy) and runs the entire sweep against it.  A publish that
/// lands mid-sweep affects only LATER sweeps — this one completes
/// bit-identically on the pinned generation, whose mapped region the pin
/// keeps alive (core/model_store.hpp).  Throws std::runtime_error when
/// nothing has been published yet.
SweepResult run_sweep(const core::SharedModelStore& store, std::vector<double> points,
                      std::size_t num_points, const SweepOptions& opts = {});

// -- drivers -------------------------------------------------------------

/// Per-symbol sampling distribution for Monte Carlo.
struct Distribution {
  enum class Kind { kNormal, kUniform, kLogNormal };
  Kind kind = Kind::kNormal;
  double a = 0.0;  ///< normal: mean; uniform: lo; lognormal: median
  double b = 0.0;  ///< normal: stddev; uniform: hi; lognormal: sigma of ln
  static Distribution normal(double mean, double stddev) {
    return {Kind::kNormal, mean, stddev};
  }
  static Distribution uniform(double lo, double hi) { return {Kind::kUniform, lo, hi}; }
  static Distribution lognormal(double median, double sigma) {
    return {Kind::kLogNormal, median, sigma};
  }
};

/// Draw n points (SoA, symbol-major) from per-symbol distributions.
/// Serial and seed-deterministic: the same (distributions, n, seed) give
/// the same points whatever the sweep's thread count.
std::vector<double> sample_points(std::span<const Distribution> distributions,
                                  std::size_t n, std::uint64_t seed);

SweepResult monte_carlo(const core::CompiledModel& model,
                        std::span<const Distribution> distributions, std::size_t n,
                        std::uint64_t seed = 42, const SweepOptions& opts = {});

/// One symbol's grid axis; count == 1 pins the symbol at lo.
struct Axis {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t count = 1;
  bool log_scale = false;  ///< geometric instead of linear spacing
};

/// Full factorial grid (row-major: the LAST axis varies fastest).
/// num_points_out receives prod(count).
std::vector<double> grid_points(std::span<const Axis> axes, std::size_t& num_points_out);

SweepResult grid_sweep(const core::CompiledModel& model, std::span<const Axis> axes,
                       const SweepOptions& opts = {});

/// Per-symbol lo/hi corner values.
struct Corner {
  double lo = 0.0;
  double hi = 0.0;
};

/// All 2^nsym process corners; bit i of the point index selects symbol i's
/// hi value.  Throws for more than 24 symbols.
SweepResult corners(const core::CompiledModel& model, std::span<const Corner> extremes,
                    const SweepOptions& opts = {});

}  // namespace awe::sweep
