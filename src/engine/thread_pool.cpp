#include "engine/thread_pool.hpp"

#include <algorithm>

#include "health/failpoints.hpp"

namespace awe::sweep {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads - 1);
  for (std::size_t w = 0; w + 1 < threads; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk(std::size_t n, std::size_t w) const {
  const std::size_t k = size();
  return {n * w / k, n * (w + 1) / k};
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const ChunkFn* job = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
      n = job_n_;
    }
    std::exception_ptr err;
    try {
      // Injection site: a task that dies before touching its chunk, to
      // exercise the contain-rethrow-stay-usable contract.
      health::failpoints::maybe_fail(health::failpoints::sites::kThreadPoolTask);
      const auto [begin, end] = chunk(n, worker_index);
      if (begin < end) (*job)(worker_index, begin, end);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !error_) error_ = err;
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_chunks(std::size_t n, const ChunkFn& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    health::failpoints::maybe_fail(health::failpoints::sites::kThreadPoolTask);
    fn(0, 0, n);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_n_ = n;
    pending_ = workers_.size();
    error_ = nullptr;
    ++epoch_;
  }
  cv_start_.notify_all();

  // The caller is the last worker; run its chunk while the pool works.
  std::exception_ptr caller_err;
  try {
    const auto [begin, end] = chunk(n, workers_.size());
    if (begin < end) fn(workers_.size(), begin, end);
  } catch (...) {
    caller_err = std::current_exception();
  }

  std::exception_ptr pool_err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    job_ = nullptr;
    pool_err = error_;
    error_ = nullptr;
  }
  if (pool_err) std::rethrow_exception(pool_err);
  if (caller_err) std::rethrow_exception(caller_err);
}

}  // namespace awe::sweep
