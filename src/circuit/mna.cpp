#include "circuit/mna.hpp"

#include <cmath>
#include <stdexcept>

namespace awe::circuit {

std::size_t MnaLayout::node_unknown(NodeId node) const {
  if (node == kGround) throw std::invalid_argument("ground has no MNA unknown");
  if (node > num_nodes) throw std::out_of_range("node index out of range");
  return node - 1;
}

std::size_t MnaLayout::aux_unknown(std::size_t element_index) const {
  const std::ptrdiff_t aux = aux_of_element.at(element_index);
  if (aux < 0) throw std::invalid_argument("element has no auxiliary current");
  return num_nodes + static_cast<std::size_t>(aux);
}

namespace {

bool needs_aux(ElementKind kind) {
  return kind == ElementKind::kVoltageSource || kind == ElementKind::kInductor ||
         kind == ElementKind::kVcvs || kind == ElementKind::kCcvs;
}

}  // namespace

MnaAssembler::MnaAssembler(const Netlist& netlist) : netlist_(&netlist) {
  layout_.num_nodes = netlist.num_nodes();
  layout_.aux_of_element.assign(netlist.elements().size(), -1);
  std::size_t aux = 0;
  for (std::size_t i = 0; i < netlist.elements().size(); ++i) {
    const Element& e = netlist.elements()[i];
    if (needs_aux(e.kind)) layout_.aux_of_element[i] = static_cast<std::ptrdiff_t>(aux++);
    if (e.kind == ElementKind::kCccs || e.kind == ElementKind::kCcvs) {
      const auto ctrl = netlist.find_element(e.ctrl_source);
      if (!ctrl || netlist.elements()[*ctrl].kind != ElementKind::kVoltageSource)
        throw std::invalid_argument("element '" + e.name +
                                    "' controlling source missing or not a V source");
    }
    if (e.kind == ElementKind::kMutual) {
      for (const auto* ref : {&e.ctrl_source, &e.ctrl_source2}) {
        const auto l = netlist.find_element(*ref);
        if (!l || netlist.elements()[*l].kind != ElementKind::kInductor)
          throw std::invalid_argument("mutual '" + e.name + "' reference '" + *ref +
                                      "' is not an inductor");
      }
    }
  }
  layout_.num_aux = aux;
}

void MnaAssembler::stamp_all(linalg::TripletMatrix& g, linalg::TripletMatrix& c) const {
  for (std::size_t i = 0; i < netlist_->elements().size(); ++i) stamp_element(i, g, c);
}

void MnaAssembler::stamp_element(std::size_t element_index, linalg::TripletMatrix& g,
                                 linalg::TripletMatrix& c) const {
  const Element& e = netlist_->elements().at(element_index);
  const auto& lay = layout_;

  // Stamp helper that drops ground rows/columns.
  auto stamp = [&](linalg::TripletMatrix& m, NodeId r, NodeId col, double v) {
    if (r == kGround || col == kGround) return;
    m.add(lay.node_unknown(r), lay.node_unknown(col), v);
  };
  auto stamp_row = [&](linalg::TripletMatrix& m, std::size_t row, NodeId col, double v) {
    if (col == kGround) return;
    m.add(row, lay.node_unknown(col), v);
  };
  auto stamp_col = [&](linalg::TripletMatrix& m, NodeId r, std::size_t col, double v) {
    if (r == kGround) return;
    m.add(lay.node_unknown(r), col, v);
  };

  switch (e.kind) {
    case ElementKind::kResistor:
    case ElementKind::kConductance: {
      const double gg =
          (e.kind == ElementKind::kResistor) ? 1.0 / e.value : e.value;
      stamp(g, e.pos, e.pos, gg);
      stamp(g, e.neg, e.neg, gg);
      stamp(g, e.pos, e.neg, -gg);
      stamp(g, e.neg, e.pos, -gg);
      break;
    }
    case ElementKind::kCapacitor: {
      stamp(c, e.pos, e.pos, e.value);
      stamp(c, e.neg, e.neg, e.value);
      stamp(c, e.pos, e.neg, -e.value);
      stamp(c, e.neg, e.pos, -e.value);
      break;
    }
    case ElementKind::kInductor: {
      // Branch current i flows pos -> neg; branch row: v_pos - v_neg = s L i.
      const std::size_t aux = lay.aux_unknown(element_index);
      stamp_col(g, e.pos, aux, 1.0);
      stamp_col(g, e.neg, aux, -1.0);
      stamp_row(g, aux, e.pos, 1.0);
      stamp_row(g, aux, e.neg, -1.0);
      c.add(aux, aux, -e.value);
      break;
    }
    case ElementKind::kVoltageSource: {
      const std::size_t aux = lay.aux_unknown(element_index);
      stamp_col(g, e.pos, aux, 1.0);
      stamp_col(g, e.neg, aux, -1.0);
      stamp_row(g, aux, e.pos, 1.0);
      stamp_row(g, aux, e.neg, -1.0);
      break;
    }
    case ElementKind::kCurrentSource:
      break;  // RHS only
    case ElementKind::kVccs: {
      // i = gm (v_cp - v_cn) from pos to neg.
      stamp(g, e.pos, e.ctrl_pos, e.value);
      stamp(g, e.pos, e.ctrl_neg, -e.value);
      stamp(g, e.neg, e.ctrl_pos, -e.value);
      stamp(g, e.neg, e.ctrl_neg, e.value);
      break;
    }
    case ElementKind::kVcvs: {
      const std::size_t aux = lay.aux_unknown(element_index);
      stamp_col(g, e.pos, aux, 1.0);
      stamp_col(g, e.neg, aux, -1.0);
      // v_pos - v_neg - gain (v_cp - v_cn) = 0
      stamp_row(g, aux, e.pos, 1.0);
      stamp_row(g, aux, e.neg, -1.0);
      stamp_row(g, aux, e.ctrl_pos, -e.value);
      stamp_row(g, aux, e.ctrl_neg, e.value);
      break;
    }
    case ElementKind::kCccs: {
      const std::size_t ctrl = *netlist_->find_element(e.ctrl_source);
      const std::size_t ctrl_aux = lay.aux_unknown(ctrl);
      stamp_col(g, e.pos, ctrl_aux, e.value);
      stamp_col(g, e.neg, ctrl_aux, -e.value);
      break;
    }
    case ElementKind::kMutual: {
      // v_L1 row gains -s M i_L2 and vice versa, with M = k sqrt(L1 L2).
      const std::size_t l1 = *netlist_->find_element(e.ctrl_source);
      const std::size_t l2 = *netlist_->find_element(e.ctrl_source2);
      const double m = e.value * std::sqrt(netlist_->elements()[l1].value *
                                           netlist_->elements()[l2].value);
      const std::size_t aux1 = lay.aux_unknown(l1);
      const std::size_t aux2 = lay.aux_unknown(l2);
      c.add(aux1, aux2, -m);
      c.add(aux2, aux1, -m);
      break;
    }
    case ElementKind::kCcvs: {
      const std::size_t aux = lay.aux_unknown(element_index);
      const std::size_t ctrl = *netlist_->find_element(e.ctrl_source);
      const std::size_t ctrl_aux = lay.aux_unknown(ctrl);
      stamp_col(g, e.pos, aux, 1.0);
      stamp_col(g, e.neg, aux, -1.0);
      // v_pos - v_neg - r * i_ctrl = 0
      stamp_row(g, aux, e.pos, 1.0);
      stamp_row(g, aux, e.neg, -1.0);
      g.add(aux, ctrl_aux, -e.value);
      break;
    }
  }
}

void MnaAssembler::stamp_value_derivative(std::size_t element_index,
                                          linalg::TripletMatrix& dg,
                                          linalg::TripletMatrix& dc) const {
  const Element& e = netlist_->elements().at(element_index);
  const auto& lay = layout_;
  auto stamp = [&](linalg::TripletMatrix& m, NodeId r, NodeId col, double v) {
    if (r == kGround || col == kGround) return;
    m.add(lay.node_unknown(r), lay.node_unknown(col), v);
  };
  switch (e.kind) {
    case ElementKind::kResistor: {
      const double d = -1.0 / (e.value * e.value);  // d(1/R)/dR
      stamp(dg, e.pos, e.pos, d);
      stamp(dg, e.neg, e.neg, d);
      stamp(dg, e.pos, e.neg, -d);
      stamp(dg, e.neg, e.pos, -d);
      break;
    }
    case ElementKind::kConductance: {
      stamp(dg, e.pos, e.pos, 1.0);
      stamp(dg, e.neg, e.neg, 1.0);
      stamp(dg, e.pos, e.neg, -1.0);
      stamp(dg, e.neg, e.pos, -1.0);
      break;
    }
    case ElementKind::kCapacitor: {
      stamp(dc, e.pos, e.pos, 1.0);
      stamp(dc, e.neg, e.neg, 1.0);
      stamp(dc, e.pos, e.neg, -1.0);
      stamp(dc, e.neg, e.pos, -1.0);
      break;
    }
    case ElementKind::kInductor: {
      dc.add(lay.aux_unknown(element_index), lay.aux_unknown(element_index), -1.0);
      break;
    }
    case ElementKind::kVccs: {
      stamp(dg, e.pos, e.ctrl_pos, 1.0);
      stamp(dg, e.pos, e.ctrl_neg, -1.0);
      stamp(dg, e.neg, e.ctrl_pos, -1.0);
      stamp(dg, e.neg, e.ctrl_neg, 1.0);
      break;
    }
    default:
      throw std::invalid_argument("value derivative not supported for element '" + e.name +
                                  "' of kind " + to_string(e.kind));
  }
}

linalg::SparseMatrix MnaAssembler::build_g() const {
  linalg::TripletMatrix g(layout_.dim(), layout_.dim());
  linalg::TripletMatrix c(layout_.dim(), layout_.dim());
  stamp_all(g, c);
  return g.compress();
}

linalg::SparseMatrix MnaAssembler::build_c() const {
  linalg::TripletMatrix g(layout_.dim(), layout_.dim());
  linalg::TripletMatrix c(layout_.dim(), layout_.dim());
  stamp_all(g, c);
  return c.compress();
}

void MnaAssembler::rhs_for(const Element& e, std::size_t element_index, double amplitude,
                           linalg::Vector& b) const {
  if (e.kind == ElementKind::kVoltageSource) {
    b[layout_.aux_unknown(element_index)] += amplitude;
  } else if (e.kind == ElementKind::kCurrentSource) {
    // Current flows pos -> neg inside the source: leaves pos, enters neg.
    if (e.pos != kGround) b[layout_.node_unknown(e.pos)] -= amplitude;
    if (e.neg != kGround) b[layout_.node_unknown(e.neg)] += amplitude;
  } else {
    throw std::invalid_argument("element '" + e.name + "' is not an independent source");
  }
}

linalg::Vector MnaAssembler::rhs(std::string_view source_name, double amplitude) const {
  const auto idx = netlist_->find_element(source_name);
  if (!idx) throw std::invalid_argument("no such source: " + std::string(source_name));
  linalg::Vector b(layout_.dim(), 0.0);
  rhs_for(netlist_->elements()[*idx], *idx, amplitude, b);
  return b;
}

linalg::Vector MnaAssembler::rhs_all_sources() const {
  linalg::Vector b(layout_.dim(), 0.0);
  for (std::size_t i = 0; i < netlist_->elements().size(); ++i) {
    const Element& e = netlist_->elements()[i];
    if (e.kind == ElementKind::kVoltageSource || e.kind == ElementKind::kCurrentSource)
      rhs_for(e, i, e.value, b);
  }
  return b;
}

linalg::Vector MnaAssembler::output_selector(NodeId node) const {
  linalg::Vector r(layout_.dim(), 0.0);
  r[layout_.node_unknown(node)] = 1.0;
  return r;
}

}  // namespace awe::circuit
