// SPICE-like netlist deck parser.
//
// Accepts the classic element cards for linear circuits (R, C, L, V, I,
// G/E/F/H controlled sources, K mutual inductance), hierarchical
// subcircuits:
//
//   .subckt <name> <port> <port> ...
//     <element cards>
//   .ends
//   X<inst> <node> <node> ... <subckt-name>
//
// (instances expand flat; internal nodes/elements are prefixed
// "<inst>.", nesting is allowed up to a fixed depth), plus three
// AWEsymbolic directives:
//
//   .symbol <element-name>          mark an element symbolic
//   .input  <source-name>           designate the analysis input source
//   .output <node-name>             designate the output node
//
// Values understand SPICE magnitude suffixes (t g meg k m u n p f) and
// ignore trailing unit text ("1kohm", "10pF").
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace awe::circuit {

struct ParsedDeck {
  Netlist netlist;
  std::string title;
  std::vector<std::string> symbol_elements;  ///< names marked .symbol
  std::string input_source;                  ///< name from .input ("" if absent)
  std::string output_node;                   ///< name from .output ("" if absent)
};

/// Parse a deck; throws std::runtime_error with line context on malformed
/// input.
ParsedDeck parse_deck(std::istream& in);
ParsedDeck parse_deck_string(const std::string& text);

/// Parse a single SPICE value ("4.7k", "1e-12", "3meg", "10pF").
/// Throws std::runtime_error on garbage.
double parse_spice_value(const std::string& token);

}  // namespace awe::circuit
