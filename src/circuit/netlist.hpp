// Netlist data model for linear(ized) circuits.
//
// Supports the element set used by AWE-class analyses of linearized
// circuits: R (or direct conductance G), C, L, independent V/I sources and
// the four controlled sources.  Nonlinear devices enter this layer already
// linearized (e.g. BJTs as hybrid-pi small-signal stamps produced by
// src/circuits/opamp741).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace awe::circuit {

/// Node index; 0 is always ground.
using NodeId = std::size_t;
constexpr NodeId kGround = 0;

enum class ElementKind {
  kResistor,       ///< value in ohms
  kConductance,    ///< value in siemens (paper's symbolic g elements)
  kCapacitor,      ///< farads
  kInductor,       ///< henries
  kVoltageSource,  ///< volts (DC/transfer value)
  kCurrentSource,  ///< amperes
  kVccs,           ///< voltage-controlled current source, value = gm
  kVcvs,           ///< voltage-controlled voltage source, value = gain
  kCccs,           ///< current-controlled current source, value = gain, ctrl = V-source
  kCcvs,           ///< current-controlled voltage source, value = transresistance
  kMutual,         ///< mutual inductance: value = coupling k in (0, 1],
                   ///< ctrl_source/ctrl_source2 name the coupled inductors
};

const char* to_string(ElementKind kind);

struct Element {
  ElementKind kind{};
  std::string name;
  NodeId pos = kGround;       ///< positive terminal
  NodeId neg = kGround;       ///< negative terminal
  NodeId ctrl_pos = kGround;  ///< controlling nodes (VCCS/VCVS)
  NodeId ctrl_neg = kGround;
  std::string ctrl_source;    ///< controlling V-source name (CCCS/CCVS) or first L (K)
  std::string ctrl_source2;   ///< second coupled inductor name (K only)
  double value = 0.0;
};

class Netlist {
 public:
  Netlist();

  /// Intern a node name ("0" and "gnd" map to ground).
  NodeId node(std::string_view name);
  /// Look up without creating.
  std::optional<NodeId> find_node(std::string_view name) const;
  const std::string& node_name(NodeId id) const { return node_names_.at(id); }
  /// Number of non-ground nodes.
  std::size_t num_nodes() const { return node_names_.size() - 1; }

  // -- element builders ------------------------------------------------
  std::size_t add_resistor(std::string name, NodeId a, NodeId b, double ohms);
  std::size_t add_conductance(std::string name, NodeId a, NodeId b, double siemens);
  std::size_t add_capacitor(std::string name, NodeId a, NodeId b, double farads);
  std::size_t add_inductor(std::string name, NodeId a, NodeId b, double henries);
  std::size_t add_voltage_source(std::string name, NodeId pos, NodeId neg, double volts);
  std::size_t add_current_source(std::string name, NodeId pos, NodeId neg, double amps);
  std::size_t add_vccs(std::string name, NodeId pos, NodeId neg, NodeId cpos, NodeId cneg,
                       double gm);
  std::size_t add_vcvs(std::string name, NodeId pos, NodeId neg, NodeId cpos, NodeId cneg,
                       double gain);
  std::size_t add_cccs(std::string name, NodeId pos, NodeId neg, std::string ctrl_vsource,
                       double gain);
  std::size_t add_ccvs(std::string name, NodeId pos, NodeId neg, std::string ctrl_vsource,
                       double r);
  /// Mutual inductance between two named inductors, coupling 0 < k <= 1.
  std::size_t add_mutual(std::string name, std::string inductor1, std::string inductor2,
                         double k);

  const std::vector<Element>& elements() const { return elements_; }
  Element& element(std::size_t index) { return elements_.at(index); }
  const Element& element(std::size_t index) const { return elements_.at(index); }

  /// Index of element by (unique) name.
  std::optional<std::size_t> find_element(std::string_view name) const;

  /// Change an element's value (used when sweeping symbol values through
  /// the full-AWE baseline path).
  void set_value(std::size_t index, double value) { elements_.at(index).value = value; }
  void set_value(std::string_view name, double value);

  /// Drop every element past the first `count` (their names become free
  /// again).  Interned nodes are kept — node ids stay stable.  Enables the
  /// mutate-and-restore pattern in port_admittance_moments: append scratch
  /// elements, analyze, truncate back, with no O(circuit) netlist copy.
  void truncate_elements(std::size_t count);

  /// Count of energy-storage elements (C and L) — the paper reports this
  /// statistic for the 741 benchmark.
  std::size_t num_storage_elements() const;

  /// Sanity checks: every non-ground node reachable from ground through
  /// element terminals, no zero-valued R in parallel-only positions, etc.
  /// Returns a list of human-readable problems (empty = clean).
  std::vector<std::string> validate() const;

 private:
  std::size_t add(Element e);

  std::vector<Element> elements_;
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_ids_;
  std::unordered_map<std::string, std::size_t> element_ids_;
};

}  // namespace awe::circuit
