// Modified Nodal Analysis (Ho, Ruehli, Brennan 1975).
//
// Builds the MNA pencil  (G + sC) x(s) = b u(s)  for a linear netlist:
// node-voltage unknowns for every non-ground node plus auxiliary branch
// currents for voltage sources, inductors, VCVS and CCVS.  Inductors stamp
// as impedances through their branch row (paper eqn (10)): the pencil stays
// linear in s, with the element appearing in exactly one stamp term.
//
// The assembler is reused by the transient simulator, the numeric AWE
// engine and the moment-level partitioner (which assembles sub-netlists).
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "circuit/netlist.hpp"
#include "linalg/sparse.hpp"

namespace awe::circuit {

/// Unknown ordering: [v_1 .. v_N, i_aux_0 .. i_aux_{M-1}].
struct MnaLayout {
  std::size_t num_nodes = 0;  ///< non-ground nodes
  std::size_t num_aux = 0;    ///< auxiliary branch currents
  /// aux_of_element[k] is the aux index of element k, or -1.
  std::vector<std::ptrdiff_t> aux_of_element;

  std::size_t dim() const { return num_nodes + num_aux; }
  /// Row/column of a node voltage; ground has no unknown (throws).
  std::size_t node_unknown(NodeId node) const;
  /// Row/column of an element's auxiliary current (throws if it has none).
  std::size_t aux_unknown(std::size_t element_index) const;
};

class MnaAssembler {
 public:
  /// Validates controlled-source references; throws on dangling refs.
  explicit MnaAssembler(const Netlist& netlist);

  const Netlist& netlist() const { return *netlist_; }
  const MnaLayout& layout() const { return layout_; }

  /// Stamp every element into G (conductance) and C (susceptance).
  void stamp_all(linalg::TripletMatrix& g, linalg::TripletMatrix& c) const;

  /// Stamp one element (used by the partitioner on numeric-partition
  /// element subsets).
  void stamp_element(std::size_t element_index, linalg::TripletMatrix& g,
                     linalg::TripletMatrix& c) const;

  /// Stamp d(G)/d(value) and d(C)/d(value) for one element — the local
  /// derivative patterns used by adjoint sensitivity analysis.  Only
  /// R, conductance, C, L and VCCS parameters are differentiable here.
  void stamp_value_derivative(std::size_t element_index, linalg::TripletMatrix& dg,
                              linalg::TripletMatrix& dc) const;

  /// Compressed G and C for the full netlist.
  linalg::SparseMatrix build_g() const;
  linalg::SparseMatrix build_c() const;

  /// Source vector b for the named independent source at `amplitude`
  /// (other sources off).  Throws if the element is not a V/I source.
  linalg::Vector rhs(std::string_view source_name, double amplitude = 1.0) const;

  /// Source vector with every independent source at its netlist value.
  linalg::Vector rhs_all_sources() const;

  /// Selector r with r^T x = v(node).
  linalg::Vector output_selector(NodeId node) const;

 private:
  void rhs_for(const Element& e, std::size_t element_index, double amplitude,
               linalg::Vector& b) const;

  const Netlist* netlist_;
  MnaLayout layout_;
};

}  // namespace awe::circuit
