#include "circuit/writer.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace awe::circuit {
namespace {

/// Full-precision value formatting (round-trips through strtod).
std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

void write_element(std::ostream& os, const Netlist& nl, const Element& e,
                   const WriteOptions& opts) {
  const auto node = [&](NodeId n) { return nl.node_name(n); };
  switch (e.kind) {
    case ElementKind::kResistor:
      os << e.name << ' ' << node(e.pos) << ' ' << node(e.neg) << ' ' << fmt(e.value);
      break;
    case ElementKind::kConductance:
      if (opts.strict)
        throw std::invalid_argument("write_deck: conductance '" + e.name +
                                    "' has no SPICE card (strict mode)");
      if (e.value <= 0.0)
        throw std::invalid_argument("write_deck: non-positive conductance '" + e.name +
                                    "' cannot be written as a resistor");
      os << e.name << ' ' << node(e.pos) << ' ' << node(e.neg) << ' ' << fmt(1.0 / e.value)
         << " ; conductance " << fmt(e.value) << " S written as resistance";
      break;
    case ElementKind::kCapacitor:
    case ElementKind::kInductor:
    case ElementKind::kVoltageSource:
    case ElementKind::kCurrentSource:
      os << e.name << ' ' << node(e.pos) << ' ' << node(e.neg) << ' ' << fmt(e.value);
      break;
    case ElementKind::kVccs:
    case ElementKind::kVcvs:
      os << e.name << ' ' << node(e.pos) << ' ' << node(e.neg) << ' ' << node(e.ctrl_pos)
         << ' ' << node(e.ctrl_neg) << ' ' << fmt(e.value);
      break;
    case ElementKind::kCccs:
    case ElementKind::kCcvs:
      os << e.name << ' ' << node(e.pos) << ' ' << node(e.neg) << ' ' << e.ctrl_source
         << ' ' << fmt(e.value);
      break;
    case ElementKind::kMutual:
      os << e.name << ' ' << e.ctrl_source << ' ' << e.ctrl_source2 << ' ' << fmt(e.value);
      break;
  }
  os << '\n';
}

bool needs_r_prefix(const Element& e) {
  // A conductance written as a resistance needs a leading 'r' to parse.
  return e.kind == ElementKind::kConductance && !e.name.empty() && e.name[0] != 'r';
}

}  // namespace

void write_netlist(std::ostream& os, const Netlist& netlist, const WriteOptions& opts) {
  os << '*' << opts.title << '\n';
  for (const auto& e : netlist.elements()) {
    if (needs_r_prefix(e)) {
      // Prefix preserves parse-ability; the original name is recorded.
      Element renamed = e;
      renamed.name = "r" + e.name;
      write_element(os, netlist, renamed, opts);
    } else {
      write_element(os, netlist, e, opts);
    }
  }
}

void write_deck(std::ostream& os, const ParsedDeck& deck, const WriteOptions& opts) {
  WriteOptions titled = opts;
  if (!deck.title.empty()) titled.title = deck.title;
  write_netlist(os, deck.netlist, titled);
  for (const auto& s : deck.symbol_elements) os << ".symbol " << s << '\n';
  if (!deck.input_source.empty()) os << ".input " << deck.input_source << '\n';
  if (!deck.output_node.empty()) os << ".output " << deck.output_node << '\n';
  os << ".end\n";
}

std::string deck_to_string(const ParsedDeck& deck, const WriteOptions& opts) {
  std::ostringstream os;
  write_deck(os, deck, opts);
  return os.str();
}

}  // namespace awe::circuit
