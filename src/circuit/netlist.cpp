#include "circuit/netlist.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace awe::circuit {

const char* to_string(ElementKind kind) {
  switch (kind) {
    case ElementKind::kResistor: return "resistor";
    case ElementKind::kConductance: return "conductance";
    case ElementKind::kCapacitor: return "capacitor";
    case ElementKind::kInductor: return "inductor";
    case ElementKind::kVoltageSource: return "vsource";
    case ElementKind::kCurrentSource: return "isource";
    case ElementKind::kVccs: return "vccs";
    case ElementKind::kVcvs: return "vcvs";
    case ElementKind::kCccs: return "cccs";
    case ElementKind::kCcvs: return "ccvs";
    case ElementKind::kMutual: return "mutual";
  }
  return "?";
}

Netlist::Netlist() {
  node_names_.push_back("0");
  node_ids_.emplace("0", kGround);
}

NodeId Netlist::node(std::string_view name) {
  std::string key(name);
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (key == "gnd") key = "0";
  const auto it = node_ids_.find(key);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = node_names_.size();
  node_names_.push_back(key);
  node_ids_.emplace(std::move(key), id);
  return id;
}

std::optional<NodeId> Netlist::find_node(std::string_view name) const {
  std::string key(name);
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (key == "gnd") key = "0";
  const auto it = node_ids_.find(key);
  if (it == node_ids_.end()) return std::nullopt;
  return it->second;
}

std::size_t Netlist::add(Element e) {
  if (e.name.empty()) throw std::invalid_argument("element must be named");
  if (element_ids_.contains(e.name))
    throw std::invalid_argument("duplicate element name: " + e.name);
  const std::size_t idx = elements_.size();
  element_ids_.emplace(e.name, idx);
  elements_.push_back(std::move(e));
  return idx;
}

std::size_t Netlist::add_resistor(std::string name, NodeId a, NodeId b, double ohms) {
  if (ohms <= 0.0) throw std::invalid_argument("resistor must have positive resistance: " + name);
  return add({ElementKind::kResistor, std::move(name), a, b, kGround, kGround, {}, {}, ohms});
}

std::size_t Netlist::add_conductance(std::string name, NodeId a, NodeId b, double siemens) {
  return add({ElementKind::kConductance, std::move(name), a, b, kGround, kGround, {}, {}, siemens});
}

std::size_t Netlist::add_capacitor(std::string name, NodeId a, NodeId b, double farads) {
  if (farads < 0.0) throw std::invalid_argument("capacitor must be non-negative: " + name);
  return add({ElementKind::kCapacitor, std::move(name), a, b, kGround, kGround, {}, {}, farads});
}

std::size_t Netlist::add_inductor(std::string name, NodeId a, NodeId b, double henries) {
  if (henries < 0.0) throw std::invalid_argument("inductor must be non-negative: " + name);
  return add({ElementKind::kInductor, std::move(name), a, b, kGround, kGround, {}, {}, henries});
}

std::size_t Netlist::add_voltage_source(std::string name, NodeId pos, NodeId neg, double volts) {
  return add({ElementKind::kVoltageSource, std::move(name), pos, neg, kGround, kGround, {}, {}, volts});
}

std::size_t Netlist::add_current_source(std::string name, NodeId pos, NodeId neg, double amps) {
  return add({ElementKind::kCurrentSource, std::move(name), pos, neg, kGround, kGround, {}, {}, amps});
}

std::size_t Netlist::add_vccs(std::string name, NodeId pos, NodeId neg, NodeId cpos,
                              NodeId cneg, double gm) {
  return add({ElementKind::kVccs, std::move(name), pos, neg, cpos, cneg, {}, {}, gm});
}

std::size_t Netlist::add_vcvs(std::string name, NodeId pos, NodeId neg, NodeId cpos,
                              NodeId cneg, double gain) {
  return add({ElementKind::kVcvs, std::move(name), pos, neg, cpos, cneg, {}, {}, gain});
}

std::size_t Netlist::add_cccs(std::string name, NodeId pos, NodeId neg,
                              std::string ctrl_vsource, double gain) {
  return add({ElementKind::kCccs, std::move(name), pos, neg, kGround, kGround,
              std::move(ctrl_vsource), {}, gain});
}

std::size_t Netlist::add_ccvs(std::string name, NodeId pos, NodeId neg,
                              std::string ctrl_vsource, double r) {
  return add({ElementKind::kCcvs, std::move(name), pos, neg, kGround, kGround,
              std::move(ctrl_vsource), {}, r});
}

std::size_t Netlist::add_mutual(std::string name, std::string inductor1,
                                std::string inductor2, double k) {
  if (k <= 0.0 || k > 1.0)
    throw std::invalid_argument("mutual coupling must be in (0, 1]: " + name);
  if (inductor1 == inductor2)
    throw std::invalid_argument("mutual inductance needs two distinct inductors: " + name);
  Element e{ElementKind::kMutual, std::move(name),  kGround, kGround,
            kGround,              kGround,          std::move(inductor1),
            std::move(inductor2), k};
  return add(std::move(e));
}

std::optional<std::size_t> Netlist::find_element(std::string_view name) const {
  const auto it = element_ids_.find(std::string(name));
  if (it == element_ids_.end()) return std::nullopt;
  return it->second;
}

void Netlist::set_value(std::string_view name, double value) {
  const auto idx = find_element(name);
  if (!idx) throw std::invalid_argument("no such element: " + std::string(name));
  set_value(*idx, value);
}

void Netlist::truncate_elements(std::size_t count) {
  if (count > elements_.size())
    throw std::invalid_argument("truncate_elements: count exceeds element count");
  for (std::size_t i = count; i < elements_.size(); ++i)
    element_ids_.erase(elements_[i].name);
  elements_.resize(count);
}

std::size_t Netlist::num_storage_elements() const {
  std::size_t n = 0;
  for (const auto& e : elements_)
    if (e.kind == ElementKind::kCapacitor || e.kind == ElementKind::kInductor) ++n;
  return n;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  // Connectivity: every node must be reachable from ground via element
  // terminals (controlling nodes count, they share the conductance graph
  // for the purposes of floating-node detection only when also touched by
  // a two-terminal element; be conservative and include them).
  const std::size_t n = node_names_.size();
  std::vector<std::vector<NodeId>> adj(n);
  auto link = [&](NodeId a, NodeId b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  for (const auto& e : elements_) {
    link(e.pos, e.neg);
    if (e.kind == ElementKind::kVccs || e.kind == ElementKind::kVcvs)
      link(e.ctrl_pos, e.ctrl_neg);
  }
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{kGround};
  seen[kGround] = true;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const NodeId v : adj[u])
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
  }
  for (NodeId i = 1; i < n; ++i)
    if (!seen[i]) problems.push_back("node '" + node_names_[i] + "' is not connected to ground");

  // Controlled-source and mutual-inductance references must resolve.
  for (const auto& e : elements_) {
    if (e.kind == ElementKind::kCccs || e.kind == ElementKind::kCcvs) {
      const auto ctrl = find_element(e.ctrl_source);
      if (!ctrl) {
        problems.push_back("element '" + e.name + "' references unknown control source '" +
                           e.ctrl_source + "'");
      } else if (elements_[*ctrl].kind != ElementKind::kVoltageSource) {
        problems.push_back("element '" + e.name + "' control '" + e.ctrl_source +
                           "' is not a voltage source");
      }
    } else if (e.kind == ElementKind::kMutual) {
      for (const auto* ref : {&e.ctrl_source, &e.ctrl_source2}) {
        const auto l = find_element(*ref);
        if (!l || elements_[*l].kind != ElementKind::kInductor)
          problems.push_back("mutual '" + e.name + "' reference '" + *ref +
                             "' is not an inductor");
      }
    }
  }
  return problems;
}

}  // namespace awe::circuit
