#include "circuit/parser.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace awe::circuit {
namespace {

constexpr int kMaxSubcktDepth = 20;

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw std::runtime_error("netlist line " + std::to_string(line_no) + ": " + msg);
}

struct Card {
  std::vector<std::string> tokens;
  std::size_t line_no = 0;
};

struct SubcktDef {
  std::vector<std::string> ports;  // lowercase port node names
  std::vector<Card> cards;
};

/// Name resolution inside one level of hierarchy.
struct NameScope {
  std::string prefix;  // "" at top level, "x1." inside instance x1, ...
  // Maps a subcircuit-local port node name to the instantiation's node.
  std::unordered_map<std::string, std::string> port_map;

  std::string node(const std::string& raw) const {
    const std::string n = lower(raw);
    if (n == "0" || n == "gnd") return "0";
    const auto it = port_map.find(n);
    if (it != port_map.end()) return it->second;
    return prefix + n;
  }
  std::string element(const std::string& raw) const { return prefix + lower(raw); }
};

class DeckBuilder {
 public:
  explicit DeckBuilder(ParsedDeck& deck) : deck_(deck) {}

  void collect_subckt(const std::string& name, SubcktDef def) {
    subckts_.emplace(name, std::move(def));
  }

  bool has_subckt(const std::string& name) const { return subckts_.contains(name); }

  void process(const Card& card, const NameScope& scope, int depth) {
    const auto& tokens = card.tokens;
    const std::size_t line_no = card.line_no;
    const std::string head = lower(tokens[0]);
    // Classify by the basename after the last '.': a flattened-hierarchy
    // name like "x1.r2" (as the writer emits for expanded subcircuit
    // instances) is a resistor card, not an X instance card.
    const std::size_t basename_at = head.find_last_of('.') + 1;
    if (basename_at >= head.size())
      fail(line_no, "unknown element card '" + tokens[0] + "'");

    auto need = [&](std::size_t n) {
      if (tokens.size() < n)
        fail(line_no, "expected at least " + std::to_string(n - 1) + " fields after '" +
                          tokens[0] + "'");
    };
    auto value = [&](const std::string& tok) {
      try {
        return parse_spice_value(tok);
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
    };
    auto node = [&](const std::string& raw) { return deck_.netlist.node(scope.node(raw)); };

    Netlist& nl = deck_.netlist;
    const std::string name = scope.element(tokens[0]);
    try {
      switch (head[basename_at]) {
        case 'r':
          need(4);
          nl.add_resistor(name, node(tokens[1]), node(tokens[2]), value(tokens[3]));
          break;
        case 'c':
          need(4);
          nl.add_capacitor(name, node(tokens[1]), node(tokens[2]), value(tokens[3]));
          break;
        case 'l':
          need(4);
          nl.add_inductor(name, node(tokens[1]), node(tokens[2]), value(tokens[3]));
          break;
        case 'v':
          need(4);
          nl.add_voltage_source(name, node(tokens[1]), node(tokens[2]), value(tokens[3]));
          break;
        case 'i':
          need(4);
          nl.add_current_source(name, node(tokens[1]), node(tokens[2]), value(tokens[3]));
          break;
        case 'g':
          need(6);
          nl.add_vccs(name, node(tokens[1]), node(tokens[2]), node(tokens[3]),
                      node(tokens[4]), value(tokens[5]));
          break;
        case 'e':
          need(6);
          nl.add_vcvs(name, node(tokens[1]), node(tokens[2]), node(tokens[3]),
                      node(tokens[4]), value(tokens[5]));
          break;
        case 'f':
          need(5);
          nl.add_cccs(name, node(tokens[1]), node(tokens[2]),
                      scope.element(tokens[3]), value(tokens[4]));
          break;
        case 'h':
          need(5);
          nl.add_ccvs(name, node(tokens[1]), node(tokens[2]),
                      scope.element(tokens[3]), value(tokens[4]));
          break;
        case 'k':
          need(4);
          nl.add_mutual(name, scope.element(tokens[1]), scope.element(tokens[2]),
                        value(tokens[3]));
          break;
        case 'x':
          expand_instance(card, scope, depth);
          break;
        default:
          fail(line_no, "unknown element card '" + tokens[0] + "'");
      }
    } catch (const std::invalid_argument& e) {
      fail(line_no, e.what());
    }
  }

 private:
  void expand_instance(const Card& card, const NameScope& scope, int depth) {
    const auto& tokens = card.tokens;
    if (depth >= kMaxSubcktDepth)
      fail(card.line_no, "subcircuit nesting deeper than " +
                             std::to_string(kMaxSubcktDepth) + " levels");
    if (tokens.size() < 3)
      fail(card.line_no, "X card needs at least one node and a subcircuit name");
    const std::string subckt_name = lower(tokens.back());
    const auto it = subckts_.find(subckt_name);
    if (it == subckts_.end())
      fail(card.line_no, "unknown subcircuit '" + tokens.back() + "'");
    const SubcktDef& def = it->second;
    const std::size_t nargs = tokens.size() - 2;
    if (nargs != def.ports.size())
      fail(card.line_no, "subcircuit '" + subckt_name + "' expects " +
                             std::to_string(def.ports.size()) + " nodes, got " +
                             std::to_string(nargs));
    NameScope inner;
    inner.prefix = scope.element(tokens[0]) + ".";
    for (std::size_t i = 0; i < nargs; ++i)
      inner.port_map.emplace(def.ports[i], scope.node(tokens[1 + i]));
    for (const Card& c : def.cards) process(c, inner, depth + 1);
  }

  ParsedDeck& deck_;
  std::unordered_map<std::string, SubcktDef> subckts_;
};

}  // namespace

double parse_spice_value(const std::string& token) {
  const std::string t = lower(token);
  char* end = nullptr;
  const double base = std::strtod(t.c_str(), &end);
  if (end == t.c_str()) throw std::runtime_error("bad numeric value: '" + token + "'");
  std::string suffix(end);
  double scale = 1.0;
  if (!suffix.empty()) {
    if (suffix.rfind("meg", 0) == 0) {
      scale = 1e6;
    } else {
      switch (suffix[0]) {
        case 't': scale = 1e12; break;
        case 'g': scale = 1e9; break;
        case 'k': scale = 1e3; break;
        case 'm': scale = 1e-3; break;
        case 'u': scale = 1e-6; break;
        case 'n': scale = 1e-9; break;
        case 'p': scale = 1e-12; break;
        case 'f': scale = 1e-15; break;
        default:
          // Trailing unit text like "ohm", "v", "a" — only valid when it is
          // purely alphabetic.
          for (char c : suffix)
            if (!std::isalpha(static_cast<unsigned char>(c)))
              throw std::runtime_error("bad numeric value: '" + token + "'");
          return base;
      }
    }
  }
  return base * scale;
}

ParsedDeck parse_deck(std::istream& in) {
  ParsedDeck deck;
  DeckBuilder builder(deck);

  // ---- Pass 1: read cards, split out .subckt bodies. -------------------
  std::vector<Card> top_level;
  std::string line;
  std::size_t line_no = 0;
  bool first_line = true;
  bool ended = false;
  struct OpenSubckt {
    std::string name;
    SubcktDef def;
    std::size_t line_no;  ///< the .subckt line, for unterminated-block errors
  };
  std::vector<OpenSubckt> subckt_stack;

  std::vector<Card> directives;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto semi = line.find(';'); semi != std::string::npos) line.resize(semi);
    if (!line.empty() && line[0] == '*') {
      if (first_line) deck.title = line.substr(1);
      first_line = false;
      continue;
    }
    first_line = false;
    auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (ended) fail(line_no, "content after .end");
    const std::string head = lower(tokens[0]);

    if (head == ".subckt") {
      if (tokens.size() < 3) fail(line_no, ".subckt needs a name and at least one port");
      const std::string name = lower(tokens[1]);
      if (builder.has_subckt(name)) fail(line_no, "duplicate .subckt '" + tokens[1] + "'");
      for (const auto& open : subckt_stack)
        if (open.name == name) fail(line_no, "duplicate .subckt '" + tokens[1] + "'");
      SubcktDef def;
      for (std::size_t i = 2; i < tokens.size(); ++i) def.ports.push_back(lower(tokens[i]));
      subckt_stack.push_back({name, std::move(def), line_no});
      continue;
    }
    if (head == ".ends") {
      if (subckt_stack.empty()) fail(line_no, ".ends without .subckt");
      auto open = std::move(subckt_stack.back());
      subckt_stack.pop_back();
      builder.collect_subckt(open.name, std::move(open.def));
      continue;
    }
    if (!subckt_stack.empty()) {
      if (head[0] == '.') fail(line_no, "directive '" + tokens[0] + "' inside .subckt");
      subckt_stack.back().def.cards.push_back({std::move(tokens), line_no});
      continue;
    }

    if (head[0] == '.') {
      if (head == ".end") {
        ended = true;
      } else if (head == ".symbol" || head == ".input" || head == ".output") {
        directives.push_back({std::move(tokens), line_no});
      } else {
        fail(line_no, "unknown directive '" + tokens[0] + "'");
      }
      continue;
    }
    top_level.push_back({std::move(tokens), line_no});
  }
  if (!subckt_stack.empty())
    fail(subckt_stack.back().line_no,
         "unterminated .subckt '" + subckt_stack.back().name + "' (no matching .ends)");

  // ---- Pass 2: expand top-level cards. ----------------------------------
  const NameScope top_scope;
  for (const Card& card : top_level) builder.process(card, top_scope, 0);

  // ---- Directives (after expansion so they can reference anything). -----
  for (const Card& card : directives) {
    const std::string head = lower(card.tokens[0]);
    if (card.tokens.size() < 2)
      fail(card.line_no, "expected at least 1 field after '" + card.tokens[0] + "'");
    if (head == ".symbol") {
      for (std::size_t i = 1; i < card.tokens.size(); ++i)
        deck.symbol_elements.push_back(lower(card.tokens[i]));
    } else if (head == ".input") {
      deck.input_source = lower(card.tokens[1]);
    } else {
      deck.output_node = lower(card.tokens[1]);
    }
  }
  return deck;
}

ParsedDeck parse_deck_string(const std::string& text) {
  std::istringstream is(text);
  return parse_deck(is);
}

}  // namespace awe::circuit
