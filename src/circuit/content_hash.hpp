// Canonical byte encoding + dual-lane content hashing, shared by every
// content-addressed store in the tree (the whole-model cache key in
// src/core/model_cache.cpp and the per-partition block keys in
// src/partition/cells.cpp).
//
// The hash is a pair of 64-bit multiply-xor lanes over an unambiguous
// byte encoding (every variable-length field is length-prefixed, so no
// two distinct requests share an encoding).  Two independent lanes give
// a 128-bit key: accidental collisions are out of reach for any
// realistic cache population, and the caches are pure optimizations — a
// collision could at worst serve a stale result, never corrupt state.
//
// Keying is on the warm path (it runs before every cache probe), so the
// hash consumes the buffer a 64-bit word at a time and encodings are
// kept compact (u32 for node ids and string lengths).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace awe::enc {

/// Murmur3-style finalizer: spreads a word-granular running hash so every
/// input bit diffuses into every hex digit of the printed key.
inline std::uint64_t mix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

struct Hash2 {
  // Lane 1 uses the FNV-1a/64 basis and prime; lane 2 a distinct basis
  // and odd multiplier, with lane 1 folded in each step to decorrelate.
  std::uint64_t h1 = 0xcbf29ce484222325ull;
  std::uint64_t h2 = 0x9e3779b97f4a7c15ull;

  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      std::uint64_t w;
      std::memcpy(&w, p + i, sizeof(w));
      h1 = (h1 ^ w) * 0x100000001b3ull;
      h2 = (h2 ^ w) * 0xc4ceb9fe1a85ec53ull + (h1 >> 32);
    }
    for (; i < n; ++i) {
      h1 = (h1 ^ p[i]) * 0x100000001b3ull;
      h2 = (h2 ^ p[i]) * 0xc4ceb9fe1a85ec53ull + (h1 >> 32);
    }
  }

  std::uint64_t final1() const { return mix64(h1); }
  std::uint64_t final2() const { return mix64(h2 + 0x9e3779b97f4a7c15ull); }
};

inline void put_u64(std::string& buf, std::uint64_t v) {
  char bytes[8];
  for (std::size_t i = 0; i < 8; ++i)
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf.append(bytes, sizeof(bytes));
}

// Node ids and string lengths fit u32 (a netlist with 2^32 nodes is not
// representable in memory); the narrower fixed width keeps canonical
// buffers — built and hashed on every cache probe — compact.
inline void put_u32(std::string& buf, std::uint64_t v) {
  char bytes[4];
  for (std::size_t i = 0; i < 4; ++i)
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf.append(bytes, sizeof(bytes));
}

inline void put_u8(std::string& buf, std::uint8_t v) {
  buf.push_back(static_cast<char>(v));
}

inline void put_f64(std::string& buf, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(buf, bits);
}

inline void put_str(std::string& buf, const std::string& s) {
  put_u32(buf, s.size());
  buf.append(s);
}

inline std::string to_hex(std::uint64_t h1, std::uint64_t h2) {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (std::size_t i = 0; i < 16; ++i) {
    out[15 - i] = digits[(h1 >> (4 * i)) & 0xf];
    out[31 - i] = digits[(h2 >> (4 * i)) & 0xf];
  }
  return out;
}

/// 32-hex-digit digest of an encoded buffer — the one-call form every
/// content-addressed key in the tree uses.
inline std::string digest_hex(const std::string& buf) {
  Hash2 h;
  h.update(buf.data(), buf.size());
  return to_hex(h.final1(), h.final2());
}

}  // namespace awe::enc
