// Netlist serialization back to SPICE-deck form.
//
// The inverse of the parser: every parseable circuit writes to a deck that
// parses back to an electrically identical netlist (same elements, nodes,
// values and directives).  Conductance elements have no SPICE card and are
// emitted as equivalent resistors (R = 1/G) with a comment; circuits that
// must round-trip exactly should use resistors.
#pragma once

#include <ostream>
#include <string>

#include "circuit/netlist.hpp"
#include "circuit/parser.hpp"

namespace awe::circuit {

struct WriteOptions {
  std::string title = "written by awesymbolic";
  /// Throw instead of emitting the lossy R-for-G substitution.
  bool strict = false;
};

/// Write the netlist (plus any .symbol/.input/.output directives captured
/// in the deck) as a SPICE deck ending in `.end`.
void write_deck(std::ostream& os, const ParsedDeck& deck, const WriteOptions& opts = {});
void write_netlist(std::ostream& os, const Netlist& netlist, const WriteOptions& opts = {});

/// Convenience: deck text as a string.
std::string deck_to_string(const ParsedDeck& deck, const WriteOptions& opts = {});

}  // namespace awe::circuit
