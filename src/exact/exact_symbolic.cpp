#include "exact/exact_symbolic.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/mna.hpp"
#include "symbolic/poly_matrix.hpp"

namespace awe::exact {

using circuit::Element;
using circuit::ElementKind;
using circuit::kGround;
using circuit::Netlist;
using symbolic::Polynomial;
using symbolic::PolyMatrix;
using symbolic::RationalFunction;

namespace {

/// Variable 0 is s; symbols start at index 1.
constexpr std::size_t kS = 0;

struct Stamper {
  PolyMatrix& a;
  const circuit::MnaLayout& lay;
  std::size_t nvars;

  Polynomial s() const { return Polynomial::variable(nvars, kS); }
  Polynomial c(double v) const { return Polynomial::constant(nvars, v); }

  void add(std::size_t r, std::size_t col, const Polynomial& v) { a(r, col) += v; }
  void node2(circuit::NodeId p, circuit::NodeId n, const Polynomial& v) {
    if (p != kGround) add(lay.node_unknown(p), lay.node_unknown(p), v);
    if (n != kGround) add(lay.node_unknown(n), lay.node_unknown(n), v);
    if (p != kGround && n != kGround) {
      a(lay.node_unknown(p), lay.node_unknown(n)) -= v;
      a(lay.node_unknown(n), lay.node_unknown(p)) -= v;
    }
  }
  void cross(circuit::NodeId p, circuit::NodeId n, circuit::NodeId cp, circuit::NodeId cn,
             const Polynomial& v) {
    auto one = [&](circuit::NodeId r, circuit::NodeId col, double sign) {
      if (r == kGround || col == kGround) return;
      Polynomial t = v;
      t *= sign;
      a(lay.node_unknown(r), lay.node_unknown(col)) += t;
    };
    one(p, cp, 1.0);
    one(p, cn, -1.0);
    one(n, cp, -1.0);
    one(n, cn, 1.0);
  }
  void branch(circuit::NodeId p, circuit::NodeId n, std::size_t aux) {
    const Polynomial one = c(1.0);
    if (p != kGround) {
      add(lay.node_unknown(p), aux, one);
      add(aux, lay.node_unknown(p), one);
    }
    if (n != kGround) {
      a(lay.node_unknown(n), aux) -= one;
      a(aux, lay.node_unknown(n)) -= one;
    }
  }
};

}  // namespace

std::vector<Polynomial> ExactTransfer::numerator_in_s() const {
  std::vector<Polynomial> out;
  const std::size_t deg = h.num().degree_in(kS);
  for (std::size_t k = 0; k <= deg; ++k) {
    // Terms with s-exponent k, s cleared.
    std::vector<symbolic::Term> terms;
    for (const auto& t : h.num().terms())
      if (t.exponents[kS] == k) {
        symbolic::Term reduced = t;
        reduced.exponents[kS] = 0;
        terms.push_back(std::move(reduced));
      }
    out.push_back(Polynomial::from_terms(h.num().nvars(), std::move(terms)));
  }
  return out;
}

std::vector<Polynomial> ExactTransfer::denominator_in_s() const {
  std::vector<Polynomial> out;
  const std::size_t deg = h.den().degree_in(kS);
  for (std::size_t k = 0; k <= deg; ++k) {
    std::vector<symbolic::Term> terms;
    for (const auto& t : h.den().terms())
      if (t.exponents[kS] == k) {
        symbolic::Term reduced = t;
        reduced.exponents[kS] = 0;
        terms.push_back(std::move(reduced));
      }
    out.push_back(Polynomial::from_terms(h.den().nvars(), std::move(terms)));
  }
  return out;
}

namespace {

std::vector<double> internal_values(std::span<const double> element_values,
                                    const std::vector<bool>& reciprocal, double s) {
  std::vector<double> v;
  v.reserve(element_values.size() + 1);
  v.push_back(s);
  for (std::size_t i = 0; i < element_values.size(); ++i) {
    double x = element_values[i];
    if (reciprocal[i]) {
      if (x == 0.0) throw std::domain_error("exact: zero resistance symbol value");
      x = 1.0 / x;
    }
    v.push_back(x);
  }
  return v;
}

}  // namespace

double ExactTransfer::evaluate(double s, std::span<const double> element_values) const {
  if (element_values.size() + 1 != variable_names.size())
    throw std::invalid_argument("ExactTransfer: wrong number of element values");
  return h.evaluate(internal_values(element_values, reciprocal, s));
}

std::vector<double> ExactTransfer::moments(std::span<const double> element_values,
                                           std::size_t count) const {
  if (element_values.size() + 1 != variable_names.size())
    throw std::invalid_argument("ExactTransfer: wrong number of element values");
  const auto pt = internal_values(element_values, reciprocal, 0.0);
  const auto num_s = numerator_in_s();
  const auto den_s = denominator_in_s();
  std::vector<double> n(count, 0.0), d(count, 0.0);
  for (std::size_t k = 0; k < count && k < num_s.size(); ++k) n[k] = num_s[k].evaluate(pt);
  for (std::size_t k = 0; k < count && k < den_s.size(); ++k) d[k] = den_s[k].evaluate(pt);
  const double d0 = den_s.empty() ? 0.0 : den_s[0].evaluate(pt);
  if (d0 == 0.0)
    throw std::domain_error("ExactTransfer: denominator vanishes at s=0 (no Maclaurin)");
  // Long division of the power series.
  std::vector<double> m(count);
  for (std::size_t k = 0; k < count; ++k) {
    double acc = n[k];
    for (std::size_t j = 1; j <= k; ++j) acc -= d[j] * m[k - j];
    m[k] = acc / d0;
  }
  return m;
}

ExactTransfer exact_symbolic_transfer(const Netlist& netlist,
                                      const std::vector<std::string>& symbol_elements,
                                      const std::string& input_source,
                                      circuit::NodeId output_node) {
  if (output_node == kGround)
    throw std::invalid_argument("exact: output node cannot be ground");
  circuit::MnaAssembler assembler(netlist);
  const auto& lay = assembler.layout();
  if (lay.dim() > 16)
    throw std::invalid_argument(
        "exact: MNA dimension " + std::to_string(lay.dim()) +
        " exceeds 16 — exact symbolic analysis does not scale; use AWEsymbolic");

  const auto input_idx = netlist.find_element(input_source);
  if (!input_idx) throw std::invalid_argument("exact: unknown input source");
  const auto input_kind = netlist.elements()[*input_idx].kind;
  if (input_kind != ElementKind::kVoltageSource && input_kind != ElementKind::kCurrentSource)
    throw std::invalid_argument("exact: input is not an independent source");

  // Map element -> symbol index (1-based in the variable list).
  std::vector<std::ptrdiff_t> symbol_of(netlist.elements().size(), -1);
  std::vector<bool> reciprocal;
  std::vector<std::string> names{"s"};
  for (const auto& name : symbol_elements) {
    const auto idx = netlist.find_element(name);
    if (!idx) throw std::invalid_argument("exact: unknown symbolic element '" + name + "'");
    const Element& e = netlist.elements()[*idx];
    switch (e.kind) {
      case ElementKind::kResistor:
      case ElementKind::kConductance:
      case ElementKind::kCapacitor:
      case ElementKind::kInductor:
      case ElementKind::kVccs:
        break;
      default:
        throw std::invalid_argument("exact: element '" + name + "' of kind " +
                                    circuit::to_string(e.kind) + " cannot be symbolic");
    }
    symbol_of[*idx] = static_cast<std::ptrdiff_t>(names.size());
    reciprocal.push_back(e.kind == ElementKind::kResistor);
    names.push_back(e.name);
  }
  const std::size_t nvars = names.size();

  PolyMatrix a(lay.dim(), lay.dim(), nvars);
  Stamper st{a, lay, nvars};

  for (std::size_t i = 0; i < netlist.elements().size(); ++i) {
    const Element& e = netlist.elements()[i];
    const std::ptrdiff_t sym = symbol_of[i];
    auto val = [&](bool with_s) {
      Polynomial p = (sym >= 0)
                         ? Polynomial::variable(nvars, static_cast<std::size_t>(sym))
                         : st.c(e.kind == ElementKind::kResistor ? 1.0 / e.value : e.value);
      if (with_s) p = p * st.s();
      return p;
    };
    switch (e.kind) {
      case ElementKind::kResistor:
      case ElementKind::kConductance:
        st.node2(e.pos, e.neg, val(false));
        break;
      case ElementKind::kCapacitor:
        st.node2(e.pos, e.neg, val(true));
        break;
      case ElementKind::kInductor: {
        const std::size_t aux = lay.aux_unknown(i);
        st.branch(e.pos, e.neg, aux);
        a(aux, aux) -= val(true);
        break;
      }
      case ElementKind::kVoltageSource:
        st.branch(e.pos, e.neg, lay.aux_unknown(i));
        break;
      case ElementKind::kCurrentSource:
        break;
      case ElementKind::kVccs:
        st.cross(e.pos, e.neg, e.ctrl_pos, e.ctrl_neg, val(false));
        break;
      case ElementKind::kVcvs: {
        const std::size_t aux = lay.aux_unknown(i);
        st.branch(e.pos, e.neg, aux);
        // Overwrite the branch row's controlling part: row aux gets -gain
        // at the controlling nodes (branch() already set the +/-1 volts).
        if (e.ctrl_pos != kGround) a(aux, lay.node_unknown(e.ctrl_pos)) -= st.c(e.value);
        if (e.ctrl_neg != kGround) a(aux, lay.node_unknown(e.ctrl_neg)) += st.c(e.value);
        break;
      }
      case ElementKind::kCccs: {
        const std::size_t ctrl_aux = lay.aux_unknown(*netlist.find_element(e.ctrl_source));
        if (e.pos != kGround) a(lay.node_unknown(e.pos), ctrl_aux) += st.c(e.value);
        if (e.neg != kGround) a(lay.node_unknown(e.neg), ctrl_aux) -= st.c(e.value);
        break;
      }
      case ElementKind::kCcvs: {
        const std::size_t aux = lay.aux_unknown(i);
        const std::size_t ctrl_aux = lay.aux_unknown(*netlist.find_element(e.ctrl_source));
        st.branch(e.pos, e.neg, aux);
        a(aux, ctrl_aux) -= st.c(e.value);
        break;
      }
      case ElementKind::kMutual: {
        const std::size_t l1 = *netlist.find_element(e.ctrl_source);
        const std::size_t l2 = *netlist.find_element(e.ctrl_source2);
        if (symbol_of[l1] >= 0 || symbol_of[l2] >= 0)
          throw std::invalid_argument("exact: mutually-coupled inductor cannot be symbolic");
        const double m =
            e.value * std::sqrt(netlist.elements()[l1].value * netlist.elements()[l2].value);
        Polynomial sm = st.c(m) * st.s();
        a(lay.aux_unknown(l1), lay.aux_unknown(l2)) -= sm;
        a(lay.aux_unknown(l2), lay.aux_unknown(l1)) -= sm;
        break;
      }
    }
  }

  // Excitation vector.
  std::vector<Polynomial> b(lay.dim(), Polynomial(nvars));
  const Element& input = netlist.elements()[*input_idx];
  if (input.kind == ElementKind::kVoltageSource) {
    b[lay.aux_unknown(*input_idx)] = st.c(1.0);
  } else {
    if (input.pos != kGround) b[lay.node_unknown(input.pos)] = st.c(-1.0);
    if (input.neg != kGround) b[lay.node_unknown(input.neg)] = st.c(1.0);
  }

  // Cramer: H = (adj(A) b)[out] / det(A).
  const Polynomial det = determinant(a);
  if (det.is_zero()) throw std::runtime_error("exact: singular symbolic MNA matrix");
  const auto n = adjugate(a).multiply(b);

  ExactTransfer out;
  out.variable_names = std::move(names);
  out.reciprocal = std::move(reciprocal);
  out.h = RationalFunction(n[lay.node_unknown(output_node)], det).normalized();
  return out;
}

}  // namespace awe::exact
