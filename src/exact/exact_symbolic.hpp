// Exact symbolic network-function analysis — the *traditional* symbolic
// baseline (Singhal/Vlach, Alderson/Lin, ISAAC, Sspice) that AWEsymbolic
// is positioned against.
//
// Computes the full transfer function
//     H(s, e) = N(s, e) / D(s, e)
// as a ratio of multivariate polynomials in the complex frequency s AND
// the symbolic elements, by Cramer's rule on the MNA matrix treated as a
// polynomial matrix in the variables [s, e1, .., en].  Exact, but the
// polynomial sizes explode combinatorially with circuit size — the paper's
// §1 criticism ("for high order systems, this can lead to complex symbolic
// forms, even when the number of symbols is low"), which this module makes
// measurable (see bench_ablation_exact).  The MNA dimension is capped at
// 16 by the determinant routine; beyond that, exact analysis is exactly as
// impractical as the paper says.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "symbolic/rational.hpp"

namespace awe::exact {

struct ExactTransfer {
  /// H in the variables [s, symbol_0, .., symbol_{n-1}].
  symbolic::RationalFunction h;
  /// Variable names: "s" followed by the symbolic element names.
  std::vector<std::string> variable_names;
  /// Reciprocal flags per symbol (resistor symbols enter as conductances).
  std::vector<bool> reciprocal;

  /// Numerator coefficients of s^0, s^1, ... as polynomials in the symbols
  /// only (the forms of the paper's eqn (5)).
  std::vector<symbolic::Polynomial> numerator_in_s() const;
  std::vector<symbolic::Polynomial> denominator_in_s() const;

  /// Evaluate H at a real frequency-domain point s with given symbol
  /// element values.
  double evaluate(double s, std::span<const double> element_values) const;

  /// Maclaurin moments m_0..m_{count-1} of H about s = 0 at the given
  /// element values (long division of the coefficient forms); the bridge
  /// for cross-checking AWEsymbolic's moments against the exact forms.
  std::vector<double> moments(std::span<const double> element_values,
                              std::size_t count) const;
};

/// Run the exact analysis.  `symbol_elements` as in the partitioner
/// (R/G/C/L/VCCS); every other element keeps its numeric value.  Throws
/// std::invalid_argument for MNA dimensions above 16 — use AWEsymbolic for
/// anything bigger; that is the point.
ExactTransfer exact_symbolic_transfer(const circuit::Netlist& netlist,
                                      const std::vector<std::string>& symbol_elements,
                                      const std::string& input_source,
                                      circuit::NodeId output_node);

}  // namespace awe::exact
