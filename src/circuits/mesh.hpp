// RC mesh generator (power-grid / plane-like interconnect).
//
// A W x H grid of nodes with resistors between 4-neighbors and grounded
// capacitance at every node, driven at the (0,0) corner through a Thevenin
// driver.  Unlike the tree workloads, the mesh produces genuine fill-in in
// the sparse factorization and exercises the min-degree ordering; it is
// also the classic case where the O(n) tree engine must refuse.
#pragma once

#include <cstddef>

#include "circuit/netlist.hpp"

namespace awe::circuits {

struct MeshValues {
  std::size_t width = 8;
  std::size_t height = 8;
  double r_seg = 10.0;       ///< ohms per grid edge
  double c_node = 0.5e-12;   ///< farads per node
  double r_driver = 25.0;
  double c_load = 2e-12;     ///< extra load at the far corner
};

struct MeshCircuit {
  circuit::Netlist netlist;
  circuit::NodeId far_corner = 0;  ///< node (W-1, H-1)
  static constexpr const char* kInput = "vin";
  static constexpr const char* kOutput = "far";
};

MeshCircuit make_rc_mesh(const MeshValues& values = {});

}  // namespace awe::circuits
