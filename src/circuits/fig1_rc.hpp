// The paper's Figure 1 sample circuit: a two-section RC low-pass
//   vin --R1-- v1 --R2-- v2(out),   C1 at v1, C2 at v2,
// with conductances G1 = 1/R1, G2 = 1/R2.  Its exact transfer function is
// eqn (5):
//   H(s) = G1 G2 / (C1 C2 s^2 + (G2 C1 + G2 C2 + G1 C2) s + G1 G2).
#pragma once

#include "circuit/netlist.hpp"

namespace awe::circuits {

struct Fig1Values {
  double g1 = 1.0;      ///< siemens
  double g2 = 1.0;      ///< siemens
  double c1 = 1.0;      ///< farads
  double c2 = 1.0;      ///< farads
};

struct Fig1Circuit {
  circuit::Netlist netlist;
  circuit::NodeId in = 0, v1 = 0, v2 = 0;
  static constexpr const char* kInput = "vin";
  static constexpr const char* kOutput = "v2";
};

Fig1Circuit make_fig1(const Fig1Values& values = {});

/// Closed-form denominator/numerator coefficients of eqn (5) for checking.
struct Fig1Exact {
  double num;      ///< G1 G2
  double den_s0;   ///< G1 G2
  double den_s1;   ///< G2 C1 + G2 C2 + G1 C2
  double den_s2;   ///< C1 C2
};
Fig1Exact fig1_exact(const Fig1Values& values);

}  // namespace awe::circuits
