#include "circuits/mesh.hpp"

#include <stdexcept>
#include <string>

namespace awe::circuits {

using circuit::kGround;
using circuit::NodeId;

MeshCircuit make_rc_mesh(const MeshValues& v) {
  if (v.width < 2 || v.height < 2)
    throw std::invalid_argument("mesh: need at least a 2x2 grid");
  MeshCircuit c;
  auto& nl = c.netlist;
  auto node_of = [&](std::size_t x, std::size_t y) {
    if (x + 1 == v.width && y + 1 == v.height) return nl.node("far");
    return nl.node("m" + std::to_string(x) + "_" + std::to_string(y));
  };

  const NodeId in = nl.node("in");
  nl.add_voltage_source(MeshCircuit::kInput, in, kGround, 1.0);
  nl.add_resistor("rdrv", in, node_of(0, 0), v.r_driver);

  for (std::size_t y = 0; y < v.height; ++y) {
    for (std::size_t x = 0; x < v.width; ++x) {
      nl.add_capacitor("c" + std::to_string(x) + "_" + std::to_string(y),
                       node_of(x, y), kGround, v.c_node);
      if (x + 1 < v.width)
        nl.add_resistor("rx" + std::to_string(x) + "_" + std::to_string(y),
                        node_of(x, y), node_of(x + 1, y), v.r_seg);
      if (y + 1 < v.height)
        nl.add_resistor("ry" + std::to_string(x) + "_" + std::to_string(y),
                        node_of(x, y), node_of(x, y + 1), v.r_seg);
    }
  }
  c.far_corner = node_of(v.width - 1, v.height - 1);
  if (v.c_load > 0.0) nl.add_capacitor("cload", c.far_corner, kGround, v.c_load);
  return c;
}

}  // namespace awe::circuits
