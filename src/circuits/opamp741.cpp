#include "circuits/opamp741.hpp"

#include <string>

namespace awe::circuits {

using circuit::kGround;
using circuit::NodeId;

Opamp741Circuit make_opamp741(const Opamp741Values& v) {
  Opamp741Circuit c;
  auto& nl = c.netlist;

  // --- main signal path (12 elements, 4 storage) -----------------------
  c.in = nl.node("in");
  const NodeId b1 = nl.node("b1");   // input-stage base
  const NodeId a = nl.node("a");     // first high-impedance node
  const NodeId b = nl.node("b");     // second-stage output
  c.out = nl.node("out");

  nl.add_voltage_source(Opamp741Circuit::kInput, c.in, kGround, 1.0);
  nl.add_resistor("rs", c.in, b1, v.r_source);

  // Input differential stage (folded into a single transconductance).
  nl.add_vccs("gm1", a, kGround, b1, kGround, v.gm1);
  nl.add_conductance("ro1", a, kGround, v.ro1);
  nl.add_capacitor("cpar1", a, kGround, 1e-12);

  // Miller-compensated second stage.  c_comp is one of the two symbols.
  nl.add_capacitor(Opamp741Circuit::kSymbolCcomp, a, b, v.c_comp);
  nl.add_vccs("gm2", b, kGround, a, kGround, v.gm2);
  nl.add_conductance("ro2", b, kGround, v.ro2);
  nl.add_capacitor("cpar2", b, kGround, 5e-12);

  // Output stage; gout_q14 is the paper's other symbol.
  nl.add_vccs("gm3", c.out, kGround, b, kGround, v.gm3);
  nl.add_conductance(Opamp741Circuit::kSymbolGout, c.out, kGround, v.gout_q14);
  nl.add_capacitor("cload", c.out, kGround, v.c_load);

  // --- parasitic hybrid-pi cells (29 cells x 5 elements = 145 elements,
  // 58 storage) + 13-resistor bias chain = 170 total, 62 storage ---------
  constexpr std::size_t kCells = 29;
  const NodeId attach[4] = {b1, a, b, c.out};
  std::vector<NodeId> cell(kCells);
  for (std::size_t i = 0; i < kCells; ++i) cell[i] = nl.node("q" + std::to_string(i));
  for (std::size_t i = 0; i < kCells; ++i) {
    const std::string tag = std::to_string(i);
    const NodeId host = attach[i % 4];
    nl.add_resistor("rpi" + tag, cell[i], kGround, 1.0e4);
    // Very large r_o so the cells do not load the high-impedance nodes.
    nl.add_conductance("go" + tag, cell[i], host, 1.0e-8);
    nl.add_capacitor("cpi" + tag, cell[i], kGround, 5e-12);
    nl.add_capacitor("cmu" + tag, cell[i], host, 0.5e-12);
    // Weak forward transconductance into the next cell (diagonally
    // dominant: 1e-5 S coupling vs 1e-4 S to ground -> stable).
    nl.add_vccs("gq" + tag, cell[(i + 1) % kCells], kGround, cell[i], kGround, 1.0e-5);
  }
  for (std::size_t j = 0; j < 13; ++j)
    nl.add_resistor("rb" + std::to_string(j), cell[j], cell[j + 1], 1.0e5);

  return c;
}

}  // namespace awe::circuits
