#include "circuits/fig1_rc.hpp"

namespace awe::circuits {

Fig1Circuit make_fig1(const Fig1Values& values) {
  Fig1Circuit c;
  auto& nl = c.netlist;
  c.in = nl.node("in");
  c.v1 = nl.node("v1");
  c.v2 = nl.node("v2");
  nl.add_voltage_source("vin", c.in, circuit::kGround, 1.0);
  nl.add_conductance("g1", c.in, c.v1, values.g1);
  nl.add_conductance("g2", c.v1, c.v2, values.g2);
  nl.add_capacitor("c1", c.v1, circuit::kGround, values.c1);
  nl.add_capacitor("c2", c.v2, circuit::kGround, values.c2);
  return c;
}

Fig1Exact fig1_exact(const Fig1Values& v) {
  return {v.g1 * v.g2, v.g1 * v.g2, v.g2 * v.c1 + v.g2 * v.c2 + v.g1 * v.c2,
          v.c1 * v.c2};
}

}  // namespace awe::circuits
