// Linearized 741-class operational amplifier (paper §3.1 benchmark).
//
// The paper analyzes the small-signal linearization of the 741: "the small
// signal circuit contains 170 linear elements, 62 of which are energy
// storage elements", with the two most AWE-sensitive elements —
// g_out,Q14 (output-stage conductance) and C_comp (Miller compensation
// capacitor) — treated symbolically.  The authors' extracted element
// values are unpublished, so this generator produces a structurally
// comparable model (documented substitution, DESIGN.md §2):
//
//   * three-stage topology: differential transconductance input stage,
//     high-gain second stage with Miller compensation, class-AB-like
//     output stage whose output conductance is g_out,Q14;
//   * 29 parasitic hybrid-pi transistor cells (r_pi, r_o, c_pi, c_mu, gm)
//     attached through a resistive bias chain — matching the element and
//     storage counts (170 elements, 62 C/L) and giving the moment
//     computation the same sparse-solve workload;
//   * classic 741 design targets: DC gain ~2e5, unity gain ~1 MHz with
//     C_comp = 30 pF, dominant pole a few Hz, output resistance ~75 ohm.
#pragma once

#include "circuit/netlist.hpp"

namespace awe::circuits {

struct Opamp741Values {
  double gm1 = 1.9e-4;        ///< input-stage transconductance (S)
  double gm2 = 6.5e-3;        ///< second-stage transconductance (S)
  double gm3 = 1.0 / 75.0;    ///< output-stage transconductance (S); with
                              ///< gout_q14 nominal this makes a ~unity buffer
  double ro1 = 5.1e-7;        ///< input-stage output conductance (S), ~1.95 Mohm
  double ro2 = 1.33e-5;       ///< second-stage output conductance (S), ~75 kohm
  double c_comp = 30e-12;     ///< Miller compensation capacitor (F) — symbol
  double gout_q14 = 1.0 / 75.0;  ///< output-stage conductance (S) — symbol
  double c_load = 100e-12;    ///< load capacitance (F)
  double r_source = 1e3;      ///< source resistance (ohm)
};

struct Opamp741Circuit {
  circuit::Netlist netlist;
  circuit::NodeId in = 0;    ///< input node
  circuit::NodeId out = 0;   ///< output node
  static constexpr const char* kInput = "vin";
  static constexpr const char* kOutputNode = "out";
  static constexpr const char* kSymbolGout = "gout_q14";
  static constexpr const char* kSymbolCcomp = "c_comp";
};

/// Build the linearized amplifier.  Element/storage counts match the
/// paper's statistics (170 elements, 62 energy-storage elements).
Opamp741Circuit make_opamp741(const Opamp741Values& values = {});

}  // namespace awe::circuits
