#include "circuits/ladders.hpp"

#include <stdexcept>
#include <string>

namespace awe::circuits {

using circuit::kGround;
using circuit::NodeId;

LadderCircuit make_rc_ladder(const LadderValues& v) {
  if (v.segments == 0) throw std::invalid_argument("ladder: segments must be >= 1");
  LadderCircuit c;
  auto& nl = c.netlist;
  const NodeId in = nl.node("in");
  nl.add_voltage_source(LadderCircuit::kInput, in, kGround, 1.0);
  auto node_of = [&](std::size_t k) {
    if (k == v.segments) return nl.node("n_end");
    return nl.node("n" + std::to_string(k));
  };
  nl.add_resistor("rdrv", in, node_of(0), v.r_driver);
  nl.add_capacitor("c0", node_of(0), kGround, v.c_seg);
  for (std::size_t k = 0; k < v.segments; ++k) {
    nl.add_resistor("r" + std::to_string(k), node_of(k), node_of(k + 1), v.r_seg);
    nl.add_capacitor("c" + std::to_string(k + 1), node_of(k + 1), kGround, v.c_seg);
  }
  if (v.c_load > 0.0) nl.add_capacitor("cload", node_of(v.segments), kGround, v.c_load);
  c.out = node_of(v.segments);
  return c;
}

TreeCircuit make_rc_tree(const TreeValues& v) {
  if (v.depth == 0) throw std::invalid_argument("tree: depth must be >= 1");
  TreeCircuit c;
  auto& nl = c.netlist;
  const NodeId in = nl.node("in");
  nl.add_voltage_source(TreeCircuit::kInput, in, kGround, 1.0);
  const NodeId root = nl.node("root");
  nl.add_resistor("rdrv", in, root, v.r_driver);
  nl.add_capacitor("croot", root, kGround, v.c_seg);

  // Breadth-first construction; node index 1 = root, children 2i, 2i+1.
  std::size_t leaf_count = 0;
  std::vector<NodeId> level{root};
  std::size_t name = 0;
  for (std::size_t d = 1; d <= v.depth; ++d) {
    std::vector<NodeId> next;
    next.reserve(level.size() * 2);
    for (const NodeId parent : level) {
      for (int side = 0; side < 2; ++side) {
        const bool is_leaf = (d == v.depth);
        const NodeId child =
            is_leaf ? nl.node("leaf" + std::to_string(leaf_count++))
                    : nl.node("t" + std::to_string(name));
        ++name;
        nl.add_resistor("rt" + std::to_string(name), parent, child, v.r_seg);
        nl.add_capacitor("ct" + std::to_string(name), child, kGround, v.c_seg);
        if (is_leaf && v.c_leaf > 0.0)
          nl.add_capacitor("cl" + std::to_string(leaf_count), child, kGround, v.c_leaf);
        next.push_back(child);
      }
    }
    level = std::move(next);
  }
  c.first_leaf = *nl.find_node("leaf0");
  return c;
}

}  // namespace awe::circuits
