#include "circuits/coupled_lines.hpp"

#include <stdexcept>
#include <string>

namespace awe::circuits {

using circuit::kGround;
using circuit::NodeId;

CoupledLinesCircuit make_coupled_lines(const CoupledLineValues& v) {
  if (v.segments == 0) throw std::invalid_argument("coupled lines: segments must be >= 1");
  CoupledLinesCircuit c;
  auto& nl = c.netlist;
  const std::size_t n = v.segments;
  const double r_seg = v.r_total / static_cast<double>(n);
  const double cg_seg = v.c_ground_total / static_cast<double>(n);
  const double cc_seg = v.c_couple_total / static_cast<double>(n);

  // Node naming: lX_k is node k (0..n) of line X; l1_end / l2_end alias
  // the far ends for readable output selection.
  auto node_of = [&](int line, std::size_t k) {
    if (k == n) return nl.node("l" + std::to_string(line) + "_end");
    return nl.node("l" + std::to_string(line) + "_" + std::to_string(k));
  };

  // Drivers: Thevenin source + resistance into node 0 of each line.
  const NodeId d1 = nl.node("drv1");
  const NodeId d2 = nl.node("drv2");
  nl.add_voltage_source(CoupledLinesCircuit::kInput, d1, kGround, 1.0);
  nl.add_resistor(CoupledLinesCircuit::kSymbolRdriver, d1, node_of(1, 0), v.r_driver);
  nl.add_voltage_source("vdrv2", d2, kGround, 0.0);  // quiet aggressor-side driver
  nl.add_resistor("rdrv2", d2, node_of(2, 0), v.r_driver);

  for (int line = 1; line <= 2; ++line) {
    const std::string lt = std::to_string(line);
    for (std::size_t k = 0; k < n; ++k) {
      nl.add_resistor("r" + lt + "_" + std::to_string(k), node_of(line, k),
                      node_of(line, k + 1), r_seg);
      nl.add_capacitor("cg" + lt + "_" + std::to_string(k + 1), node_of(line, k + 1),
                       kGround, cg_seg);
    }
  }
  // Line-to-line coupling capacitors along the length.
  for (std::size_t k = 1; k <= n; ++k)
    nl.add_capacitor("cc_" + std::to_string(k), node_of(1, k), node_of(2, k), cc_seg);

  // Loads: line 1 fixed, line 2's load is the second symbol.
  nl.add_capacitor("cload1", node_of(1, n), kGround, v.c_load);
  nl.add_capacitor(CoupledLinesCircuit::kSymbolCload, node_of(2, n), kGround, v.c_load);

  c.line1_out = node_of(1, n);
  c.line2_out = node_of(2, n);
  return c;
}

CoupledBusCircuit make_coupled_bus(const CoupledBusValues& v) {
  if (v.lines < 2) throw std::invalid_argument("coupled bus: need at least 2 lines");
  if (v.segments == 0) throw std::invalid_argument("coupled bus: segments must be >= 1");
  CoupledBusCircuit c;
  auto& nl = c.netlist;
  const std::size_t n = v.segments;
  const double r_seg = v.r_total / static_cast<double>(n);
  const double cg_seg = v.c_ground_total / static_cast<double>(n);
  const double cc_seg = v.c_couple_total / static_cast<double>(n);

  auto node_of = [&](std::size_t line, std::size_t k) {
    if (k == n) return nl.node("l" + std::to_string(line) + "_end");
    return nl.node("l" + std::to_string(line) + "_" + std::to_string(k));
  };

  for (std::size_t line = 1; line <= v.lines; ++line) {
    const std::string lt = std::to_string(line);
    const NodeId drv = nl.node("drv" + lt);
    // Line 1 carries the active source; the others have quiet drivers.
    nl.add_voltage_source("vdrv" + lt, drv, kGround, line == 1 ? 1.0 : 0.0);
    nl.add_resistor("rdrv" + lt, drv, node_of(line, 0), v.r_driver);
    for (std::size_t k = 0; k < n; ++k) {
      nl.add_resistor("r" + lt + "_" + std::to_string(k), node_of(line, k),
                      node_of(line, k + 1), r_seg);
      nl.add_capacitor("cg" + lt + "_" + std::to_string(k + 1), node_of(line, k + 1),
                       kGround, cg_seg);
    }
    nl.add_capacitor("cload" + lt, node_of(line, n), kGround, v.c_load);
  }
  // Nearest-neighbor coupling.
  for (std::size_t line = 1; line < v.lines; ++line)
    for (std::size_t k = 1; k <= n; ++k)
      nl.add_capacitor("cc" + std::to_string(line) + "_" + std::to_string(k),
                       node_of(line, k), node_of(line + 1, k), cc_seg);

  for (std::size_t line = 1; line <= v.lines; ++line)
    c.line_outs.push_back(node_of(line, n));
  return c;
}

}  // namespace awe::circuits
