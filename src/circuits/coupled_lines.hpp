// Coupled RC transmission-line pair (paper §3.2 / Figure 8 benchmark).
//
// Two symmetric lines, each approximated with a lumped n-segment RC model
// (series resistance, capacitance to ground) with capacitive coupling
// between corresponding nodes along the full length.  Each line is driven
// through a linearized Thevenin equivalent (V source + driver resistance)
// and loaded purely capacitively.  The paper uses 1000 segments per line,
// treats the driver resistance and the load capacitance as symbols, and
// models the (non-monotonic) cross-talk with a second-order AWE form while
// first order suffices for the direct transmission.
#pragma once

#include <cstddef>

#include "circuit/netlist.hpp"

namespace awe::circuits {

struct CoupledLineValues {
  std::size_t segments = 1000;   ///< lumped segments per line
  double r_total = 1.0e3;        ///< total series resistance per line (ohm)
  double c_ground_total = 10e-12;///< total capacitance to ground per line (F)
  double c_couple_total = 5e-12; ///< total line-to-line coupling capacitance (F)
  double r_driver = 100.0;       ///< Thevenin driver resistance (ohm) — symbol
  double c_load = 1e-12;         ///< load capacitance (F) — symbol
};

struct CoupledLinesCircuit {
  circuit::Netlist netlist;
  circuit::NodeId line1_out = 0;  ///< far end of the driven line
  circuit::NodeId line2_out = 0;  ///< far end of the victim line (cross-talk)
  static constexpr const char* kInput = "vdrv1";
  static constexpr const char* kDirectOutput = "l1_end";
  static constexpr const char* kCrosstalkOutput = "l2_end";
  static constexpr const char* kSymbolRdriver = "rdrv1";
  static constexpr const char* kSymbolCload = "cload2";
};

/// Build the coupled pair.  Line 1 is driven (vdrv1 active); line 2's
/// driver is quiet (its Thevenin source is 0 and the paper's symbols are
/// line 1's driver resistance and line 2's load capacitance, the knobs of
/// the cross-talk timing model).
CoupledLinesCircuit make_coupled_lines(const CoupledLineValues& values = {});

/// N-line bus generalization: `lines` parallel RC lines with
/// nearest-neighbor capacitive coupling; line 1 is the aggressor (driven),
/// the rest are quiet victims.  Far ends are named "l<k>_end".
struct CoupledBusValues {
  std::size_t lines = 3;
  std::size_t segments = 100;
  double r_total = 1.0e3;
  double c_ground_total = 10e-12;
  double c_couple_total = 5e-12;   ///< between adjacent lines
  double r_driver = 100.0;
  double c_load = 1e-12;
};

struct CoupledBusCircuit {
  circuit::Netlist netlist;
  std::vector<circuit::NodeId> line_outs;  ///< far end of each line
  static constexpr const char* kInput = "vdrv1";
};

CoupledBusCircuit make_coupled_bus(const CoupledBusValues& values = {});

}  // namespace awe::circuits
