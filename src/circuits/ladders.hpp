// RC ladder and RC tree generators — the interconnect workloads AWE was
// designed for; used by tests and the AWE-vs-transient benchmark.
#pragma once

#include <cstddef>

#include "circuit/netlist.hpp"

namespace awe::circuits {

struct LadderValues {
  std::size_t segments = 10;
  double r_seg = 100.0;   ///< ohms per segment
  double c_seg = 1e-12;   ///< farads per segment (to ground)
  double r_driver = 50.0; ///< source resistance
  double c_load = 0.0;    ///< optional load capacitance at the far end
};

struct LadderCircuit {
  circuit::Netlist netlist;
  circuit::NodeId out = 0;  ///< far end
  static constexpr const char* kInput = "vin";
  static constexpr const char* kOutput = "n_end";
};

/// vin --Rdrv-- n0 --R--*--R--...-- n_end, C to ground at every node.
LadderCircuit make_rc_ladder(const LadderValues& values = {});

struct TreeValues {
  std::size_t depth = 4;    ///< binary tree depth (2^depth leaves)
  double r_seg = 100.0;
  double c_seg = 0.5e-12;
  double r_driver = 50.0;
  double c_leaf = 2e-12;    ///< extra load at each leaf
};

struct TreeCircuit {
  circuit::Netlist netlist;
  circuit::NodeId first_leaf = 0;  ///< observation node (left-most leaf)
  static constexpr const char* kInput = "vin";
  static constexpr const char* kOutput = "leaf0";
};

/// Balanced binary RC tree (clock-tree-like interconnect).
TreeCircuit make_rc_tree(const TreeValues& values = {});

}  // namespace awe::circuits
